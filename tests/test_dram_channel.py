"""Unit tests for the channel model (C/A bus, tFAW, PIM commands)."""

import pytest

from repro.dram.bank import StructuralHazard
from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType
from repro.dram.timing import HbmOrganization, TimingParams


@pytest.fixture
def channel():
    return Channel(0)


def gwrite():
    return Command(CommandType.PIM_GWRITE, bank=0, row=100)


class TestRegularFlow:
    def test_act_then_read_then_precharge(self, channel):
        rec_act = channel.issue(Command(CommandType.ACT, bank=0, row=1))
        rec_rd = channel.issue(Command(CommandType.RD, bank=0))
        rec_pre = channel.issue(Command(CommandType.PRE, bank=0))
        assert rec_rd.issue_time >= rec_act.issue_time + channel.timing.tRCD
        assert rec_pre.issue_time >= rec_act.issue_time + channel.timing.tRAS

    def test_read_without_open_row_raises(self, channel):
        with pytest.raises(StructuralHazard):
            channel.issue(Command(CommandType.RD, bank=0))

    def test_reads_to_different_banks_interleave_on_bus(self, channel):
        channel.issue(Command(CommandType.ACT, bank=0, row=1))
        channel.issue(Command(CommandType.ACT, bank=1, row=1))
        r0 = channel.issue(Command(CommandType.RD, bank=0))
        r1 = channel.issue(Command(CommandType.RD, bank=1))
        # Bus serializes issue but both complete close together.
        assert r1.issue_time > r0.issue_time
        assert r1.complete_time - r0.complete_time <= channel.timing.tBL + 1

    def test_ca_busy_accumulates(self, channel):
        before = channel.ca_busy_cycles
        channel.issue(Command(CommandType.ACT, bank=0, row=1))
        assert channel.ca_busy_cycles == before + 1

    def test_refresh_blocks_banks_for_trfc(self, channel):
        rec = channel.issue(Command(CommandType.REF))
        act = channel.issue(Command(CommandType.ACT, bank=0, row=1))
        assert act.issue_time >= rec.issue_time + channel.timing.tRFC


class TestTfaw:
    def test_fifth_activate_waits_for_window(self, channel):
        records = [
            channel.issue(Command(CommandType.ACT, bank=b, row=1))
            for b in range(5)
        ]
        first, fifth = records[0], records[4]
        assert fifth.issue_time >= first.issue_time + channel.timing.tFAW

    def test_grouped_pim_activation_counts_as_four(self, channel):
        channel.issue(gwrite())
        rec4 = channel.issue(Command(CommandType.PIM_ACTIVATION,
                                     banks=(0, 1, 2, 3), row=2))
        act = channel.issue(Command(CommandType.ACT, bank=10, row=1))
        assert act.issue_time >= rec4.issue_time + channel.timing.tFAW

    def test_activation_group_limited_to_four(self, channel):
        with pytest.raises(ValueError):
            channel.issue(Command(CommandType.PIM_ACTIVATION,
                                  banks=tuple(range(5)), row=2))


class TestPimFlow:
    def test_gwrite_fills_global_buffer(self, channel):
        assert channel.global_vector_row is None
        channel.issue(gwrite())
        assert channel.global_vector_row == (0, 100)

    def test_dotproduct_requires_global_vector(self, channel):
        channel.issue(Command(CommandType.PIM_ACTIVATION, banks=(0, 1, 2, 3),
                              row=2))
        with pytest.raises(StructuralHazard):
            channel.issue(Command(CommandType.PIM_DOTPRODUCT))

    def test_dotproduct_requires_activated_rows(self, channel):
        channel.issue(gwrite())
        with pytest.raises(StructuralHazard):
            channel.issue(Command(CommandType.PIM_DOTPRODUCT))

    def test_dotproduct_duration_covers_page(self, channel):
        channel.issue(gwrite())
        act = channel.issue(Command(CommandType.PIM_ACTIVATION,
                                    banks=(0, 1, 2, 3), row=2))
        rec = channel.issue(Command(CommandType.PIM_DOTPRODUCT),
                            earliest=act.complete_time)
        expected = channel.pim_timing.dotprod_cycles_per_page(
            channel.org.page_bytes)
        assert rec.complete_time - rec.issue_time == expected

    def test_gemv_requires_global_vector(self, channel):
        with pytest.raises(StructuralHazard):
            channel.issue(Command(CommandType.PIM_GEMV, k=4))

    def test_gemv_duration_scales_with_wave_pitch(self, channel):
        channel.issue(gwrite())
        rec1 = channel.issue(Command(CommandType.PIM_GEMV, k=1))
        chan2 = Channel(1)
        chan2.issue(gwrite())
        rec8 = chan2.issue(Command(CommandType.PIM_GEMV, k=8))
        dur1 = rec1.complete_time - rec1.issue_time
        dur8 = rec8.complete_time - rec8.issue_time
        pitch = max(channel.pim_timing.dotprod_cycles_per_page(
            channel.org.page_bytes), channel.timing.row_cycle // 2)
        assert dur8 - dur1 == pytest.approx(7 * pitch)

    def test_pim_precharge_closes_pim_rows(self, channel):
        channel.issue(gwrite())
        channel.issue(Command(CommandType.PIM_ACTIVATION, banks=(0, 1, 2, 3),
                              row=2))
        channel.issue(Command(CommandType.PIM_DOTPRODUCT))
        channel.issue(Command(CommandType.PIM_PRECHARGE))
        from repro.dram.commands import BufferTarget
        assert channel.banks[0].open_row(BufferTarget.PIM) is None

    def test_header_has_no_bank_effect(self, channel):
        rec = channel.issue(Command(CommandType.PIM_HEADER, k=8))
        from repro.dram.commands import BufferTarget
        assert all(b.open_row(BufferTarget.MEM) is None for b in channel.banks)
        assert rec.bus_release > rec.issue_time


class TestDualVsBlockedConcurrency:
    def _mha_with_reads(self, dual: bool):
        """Issue a GEMV followed by reads; return read completion time."""
        channel = Channel(0, dual_row_buffer=dual)
        channel.issue(gwrite())
        gemv = channel.issue(Command(CommandType.PIM_GEMV, k=16))
        channel.issue(Command(CommandType.ACT, bank=5, row=7),
                      earliest=gemv.bus_release)
        rd = channel.issue(Command(CommandType.RD, bank=5),
                           earliest=gemv.bus_release)
        return gemv, rd

    def test_dual_row_buffer_reads_overlap_gemv(self):
        gemv, rd = self._mha_with_reads(dual=True)
        assert rd.complete_time < gemv.complete_time

    def test_blocked_mode_reads_wait_for_gemv(self):
        gemv, rd = self._mha_with_reads(dual=False)
        assert rd.complete_time >= gemv.complete_time

    def test_stats_count_commands(self, channel):
        channel.issue(gwrite())
        channel.issue(Command(CommandType.PIM_GEMV, k=2))
        assert channel.stats.get("cmd.PIM_GWRITE") == 1
        assert channel.stats.get("cmd.PIM_GEMV") == 1
        assert channel.stats.get("pim.gemv_waves") == 2


class TestGemvWaveDuration:
    def test_wave_duration_positive_and_bounded(self, channel):
        wave = channel.gemv_wave_duration(32)
        assert wave > channel.pim_timing.dotprod_cycles_per_page(1024)
        assert wave < 10 * channel.timing.row_cycle

    def test_more_banks_longer_activation_spread(self, channel):
        assert channel.gemv_wave_duration(32) > channel.gemv_wave_duration(4)
