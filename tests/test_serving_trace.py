"""Unit tests for the synthetic dataset traces."""

import numpy as np
import pytest

from repro.serving.request import RequestStatus
from repro.serving.trace import (
    ALPACA,
    SHAREGPT,
    DatasetTrace,
    LengthDistribution,
    get_dataset,
    poisson_arrivals,
    sample_batches,
    warmed_batch,
)


class TestLengthDistribution:
    def test_mean_matches_target(self):
        dist = LengthDistribution(mean=100.0, sigma=0.8, max_len=100_000)
        rng = np.random.default_rng(0)
        samples = dist.sample(rng, 200_000)
        assert samples.mean() == pytest.approx(100.0, rel=0.05)

    def test_samples_clipped_to_range(self):
        dist = LengthDistribution(mean=50.0, sigma=1.5, min_len=10,
                                  max_len=100)
        rng = np.random.default_rng(1)
        samples = dist.sample(rng, 10_000)
        assert samples.min() >= 10
        assert samples.max() <= 100

    def test_samples_are_integers(self):
        rng = np.random.default_rng(2)
        samples = LengthDistribution(mean=20.0, sigma=0.5).sample(rng, 100)
        assert samples.dtype.kind == "i"

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            LengthDistribution(mean=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            LengthDistribution(mean=1.0, sigma=1.0, min_len=10, max_len=5)

    def test_heavy_tail_present(self):
        """The load-balancing experiments depend on length skew."""
        rng = np.random.default_rng(3)
        samples = SHAREGPT.output_dist.sample(rng, 50_000)
        assert samples.max() > 4 * samples.mean()


class TestPaperMeans:
    def test_sharegpt_means(self):
        """Paper §8.1: ShareGPT averages 80 in / 296 out."""
        rng = np.random.default_rng(0)
        pairs = SHAREGPT.sample_pairs(rng, 100_000)
        inputs = np.array([p[0] for p in pairs])
        outputs = np.array([p[1] for p in pairs])
        assert inputs.mean() == pytest.approx(80, rel=0.1)
        assert outputs.mean() == pytest.approx(296, rel=0.1)

    def test_alpaca_means(self):
        """Paper §8.1: Alpaca averages 12 in / 56 out."""
        rng = np.random.default_rng(0)
        pairs = ALPACA.sample_pairs(rng, 100_000)
        inputs = np.array([p[0] for p in pairs])
        outputs = np.array([p[1] for p in pairs])
        assert inputs.mean() == pytest.approx(12, rel=0.1)
        assert outputs.mean() == pytest.approx(56, rel=0.1)

    def test_sharegpt_longer_than_alpaca(self):
        rng = np.random.default_rng(0)
        share = SHAREGPT.sample_pairs(rng, 10_000)
        alpaca = ALPACA.sample_pairs(np.random.default_rng(0), 10_000)
        assert np.mean([sum(p) for p in share]) > \
            3 * np.mean([sum(p) for p in alpaca])


class TestRegistry:
    def test_lookup(self):
        assert get_dataset("ShareGPT") is SHAREGPT
        assert get_dataset("alpaca") is ALPACA

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_dataset("pile")


class TestWarmedBatch:
    def test_batch_size_respected(self):
        batch = warmed_batch(SHAREGPT, 64, seed=0)
        assert len(batch) == 64

    def test_requests_running_with_progress(self):
        batch = warmed_batch(SHAREGPT, 64, seed=0)
        assert all(r.status is RequestStatus.RUNNING for r in batch)
        assert all(0 <= r.generated < r.output_len for r in batch)

    def test_deterministic_given_seed(self):
        a = warmed_batch(SHAREGPT, 16, seed=5)
        b = warmed_batch(SHAREGPT, 16, seed=5)
        assert [(r.input_len, r.generated) for r in a] == \
            [(r.input_len, r.generated) for r in b]

    def test_different_seeds_differ(self):
        a = warmed_batch(SHAREGPT, 16, seed=5)
        b = warmed_batch(SHAREGPT, 16, seed=6)
        assert [(r.input_len, r.generated) for r in a] != \
            [(r.input_len, r.generated) for r in b]

    def test_request_ids_offset_by_start_id(self):
        batch = warmed_batch(SHAREGPT, 4, seed=0, start_id=100)
        assert [r.request_id for r in batch] == [100, 101, 102, 103]

    def test_invalid_batch_size_raises(self):
        with pytest.raises(ValueError):
            warmed_batch(SHAREGPT, 0, seed=0)

    def test_sample_batches_unique_ids(self):
        batches = sample_batches(ALPACA, 8, num_batches=3, seed=1)
        ids = [r.request_id for batch in batches for r in batch]
        assert len(ids) == len(set(ids))


class TestPoissonArrivals:
    def test_arrivals_within_horizon(self):
        arrivals = poisson_arrivals(ALPACA, rate_per_kcycle=1.0,
                                    horizon_cycles=100_000, seed=0)
        assert arrivals
        assert all(0 < r.arrival_time < 100_000 for r in arrivals)

    def test_arrival_times_sorted(self):
        arrivals = poisson_arrivals(ALPACA, 1.0, 100_000, seed=0)
        times = [r.arrival_time for r in arrivals]
        assert times == sorted(times)

    def test_rate_scales_count(self):
        low = poisson_arrivals(ALPACA, 0.5, 200_000, seed=0)
        high = poisson_arrivals(ALPACA, 2.0, 200_000, seed=0)
        assert len(high) > 2 * len(low)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            poisson_arrivals(ALPACA, 0.0, 100.0)
