"""Unit tests for the compiler framework (IR + lowering)."""

import pytest

from repro.compiler.ir import IrModule, IrOp, IrOpKind, TensorShape
from repro.compiler.lower import emit_binary, lower_model
from repro.core.config import NeuPimsConfig
from repro.dram.commands import CommandType
from repro.model.spec import GPT3_7B


class TestTensorShape:
    def test_elements_and_bytes(self):
        shape = TensorShape((4, 8), dtype_bytes=2)
        assert shape.elements == 32
        assert shape.bytes == 64

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            TensorShape((0, 4))
        with pytest.raises(ValueError):
            TensorShape((), 2)


class TestIrOp:
    def test_requires_name_and_tensors(self):
        shape = TensorShape((2, 2))
        with pytest.raises(ValueError):
            IrOp("", IrOpKind.GEMM, (shape,), (shape,))
        with pytest.raises(ValueError):
            IrOp("x", IrOpKind.GEMM, (), (shape,))


class TestLowerModel:
    def test_op_counts_per_layer(self):
        module = lower_model(GPT3_7B, [64, 64], num_layers=2)
        # per layer: qkv + 2*(logit, softmax, attend) + proj + 2 ffn = 10
        assert len(module) == 2 * 10
        assert module.layers() == 2

    def test_tp_adds_allreduce(self):
        module = lower_model(GPT3_7B, [64], tp=4, num_layers=1)
        assert len(module.by_kind(IrOpKind.ALLREDUCE)) == 1

    def test_gemv_shapes_match_seq_lens(self):
        module = lower_model(GPT3_7B, [100], num_layers=1)
        logit = next(op for op in module.ops if op.name.startswith("logit"))
        assert logit.inputs[0].dims == (100 * 32, 128)

    def test_validate_passes(self):
        module = lower_model(GPT3_7B, [64], num_layers=1)
        module.validate()  # no exception

    def test_validate_catches_shape_mismatch(self):
        module = IrModule("bad")
        module.append(IrOp(
            "qkv_generation.l0", IrOpKind.GEMM,
            inputs=(TensorShape((4, 8)), TensorShape((9, 4))),
            outputs=(TensorShape((4, 4)),), layer=0))
        module.append(IrOp(
            "ffn1.l0", IrOpKind.GEMM,
            inputs=(TensorShape((4, 4)), TensorShape((4, 4))),
            outputs=(TensorShape((4, 4)),), layer=0))
        with pytest.raises(ValueError, match="contraction"):
            module.validate()

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            lower_model(GPT3_7B, [])


class TestEmitBinary:
    def test_npu_instructions_cover_gemm_tiles(self):
        module = lower_model(GPT3_7B, [64], num_layers=1)
        binary = emit_binary(module)
        assert binary.npu_instructions
        ops = {inst.op_name for inst in binary.npu_instructions}
        assert any(name.startswith("qkv") for name in ops)
        assert any(name.startswith("ffn") for name in ops)

    def test_instructions_distributed_over_arrays(self):
        module = lower_model(GPT3_7B, [64], num_layers=1)
        binary = emit_binary(module)
        arrays = {inst.array_index for inst in binary.npu_instructions}
        assert arrays == set(range(8))

    def test_composite_config_emits_composite_commands(self):
        module = lower_model(GPT3_7B, [64], num_layers=1)
        binary = emit_binary(module, NeuPimsConfig(composite_isa=True))
        types = {c.ctype for c in binary.pim_commands}
        assert CommandType.PIM_GEMV in types
        assert CommandType.PIM_DOTPRODUCT not in types

    def test_fine_grained_config_emits_dotproducts(self):
        module = lower_model(GPT3_7B, [64], num_layers=1)
        binary = emit_binary(module, NeuPimsConfig(composite_isa=False))
        types = {c.ctype for c in binary.pim_commands}
        assert CommandType.PIM_DOTPRODUCT in types
        assert CommandType.PIM_GEMV not in types

    def test_npu_cycle_estimate_positive(self):
        module = lower_model(GPT3_7B, [64], num_layers=1)
        binary = emit_binary(module)
        assert binary.npu_cycle_estimate > 0

    def test_pim_commands_executable_on_channel(self):
        """End-to-end: the emitted PIM stream replays legally on the
        command-level channel model."""
        from repro.dram.channel import Channel
        from repro.dram.controller import MemoryController
        module = lower_model(GPT3_7B, [32], num_layers=1)
        binary = emit_binary(module)
        controller = MemoryController(Channel(0))
        controller.enqueue_pim(binary.pim_commands)
        controller.drain()
        assert controller.finish_time > 0
