"""Unit tests for the request pool and the iteration-level scheduler."""

import pytest

from repro.serving.paging import PagedKvAllocator, PagedKvConfig
from repro.serving.pool import RequestPool
from repro.serving.request import InferenceRequest, RequestStatus
from repro.serving.scheduler import IterationScheduler
from repro.model.spec import GPT3_7B


def req(request_id, input_len=8, output_len=4, arrival=0.0):
    return InferenceRequest(request_id, input_len=input_len,
                            output_len=output_len, arrival_time=arrival)


class TestRequestPool:
    def test_submit_and_get(self):
        pool = RequestPool()
        pool.submit(req(1))
        assert pool.get(1).request_id == 1
        assert 1 in pool
        assert len(pool) == 1

    def test_duplicate_id_raises(self):
        pool = RequestPool()
        pool.submit(req(1))
        with pytest.raises(ValueError):
            pool.submit(req(1))

    def test_waiting_respects_arrival_time(self):
        pool = RequestPool()
        pool.submit(req(1, arrival=100.0))
        pool.submit(req(2, arrival=5.0))
        assert [r.request_id for r in pool.waiting(now=10.0)] == [2]

    def test_waiting_sorted_by_arrival(self):
        pool = RequestPool()
        pool.submit(req(1, arrival=50.0))
        pool.submit(req(2, arrival=10.0))
        assert [r.request_id for r in pool.waiting()] == [2, 1]

    def test_retire_finished_removes_done(self):
        pool = RequestPool()
        request = req(1, output_len=1)
        pool.submit(request)
        request.begin_generation(0)
        request.advance()
        done = pool.retire_finished()
        assert [r.request_id for r in done] == [1]
        assert len(pool) == 0

    def test_channel_occupancy(self):
        pool = RequestPool()
        for i, channel in enumerate((0, 0, 1)):
            request = req(i)
            pool.submit(request)
            request.begin_generation(channel)
        assert pool.channel_occupancy(2) == [2, 1]

    def test_format_table_renders_rows(self):
        pool = RequestPool()
        pool.submit(req(7))
        table = pool.format_table()
        assert "ReqID" in table and "7" in table


class TestObserverLifecycle:
    """Status observers must die with the pool membership (no stale
    callbacks after eviction/retirement; no silent cross-pool capture)."""

    def test_evict_detaches_observer(self):
        pool = RequestPool()
        request = req(1)
        pool.submit(request)
        evicted = pool.evict(1)
        assert evicted is request
        assert 1 not in pool
        assert "_status_observer" not in request.__dict__
        # Transitions after eviction cannot corrupt the old pool.
        request.begin_generation(0)
        assert pool.running() == []

    def test_evict_unknown_id_raises(self):
        with pytest.raises(KeyError):
            RequestPool().evict(42)

    def test_retire_detaches_observer(self):
        pool = RequestPool()
        request = req(1, output_len=1)
        pool.submit(request)
        request.begin_generation(0)
        request.advance()
        [done] = pool.retire_finished()
        assert "_status_observer" not in done.__dict__

    def test_cross_pool_submit_requires_evict(self):
        first, second = RequestPool(), RequestPool()
        request = req(1)
        first.submit(request)
        with pytest.raises(ValueError, match="another pool"):
            second.submit(request)
        # After eviction the handoff is clean and the new pool's buckets
        # track subsequent transitions.
        first.evict(1)
        second.submit(request)
        request.begin_generation(2)
        assert [r.request_id for r in second.running()] == [1]
        assert first.running() == []

    def test_preemption_and_readmission_keep_buckets_exact(self):
        from repro.serving.paging import PagedKvConfig
        from repro.serving.preemption import PreemptingAllocatorPool
        pool = RequestPool()
        victim = req(1, input_len=32, output_len=16)
        survivor = req(2, input_len=32, output_len=16)
        pool.submit_all([victim, survivor])
        allocator = PagedKvAllocator(
            PagedKvConfig(block_tokens=16, capacity_bytes=1 << 26),
            GPT3_7B, layers_resident=1)
        for request in (victim, survivor):
            request.begin_generation(0)
            allocator.allocate(request.request_id, request.seq_len)
        preempting = PreemptingAllocatorPool([allocator], 1024)
        preempting.note_admission(victim)
        preempting.note_admission(survivor)

        event = preempting.preempt(victim)
        # The observer moved the victim back to the WAITING bucket.
        assert [r.request_id for r in pool.waiting()] == [1]
        assert [r.request_id for r in pool.running()] == [2]
        assert event.evicted_blocks > 0
        assert not allocator.can_allocate(1, 0) or True  # blocks freed
        assert allocator.ledger_consistent()

        # Re-admission flows through the observer again.
        allocator.allocate(victim.request_id, victim.seq_len)
        victim.begin_generation(0)
        assert sorted(r.request_id for r in pool.running()) == [1, 2]
        assert pool.waiting() == []

        # Retirement after re-admission detaches cleanly.
        victim.generated = victim.output_len
        victim.status = RequestStatus.DONE
        [done] = pool.retire_finished()
        assert done.request_id == 1
        assert "_status_observer" not in done.__dict__


class TestIterationScheduler:
    def _executor(self, latency=100.0):
        calls = []

        def run(batch):
            calls.append([r.request_id for r in batch])
            return latency
        run.calls = calls  # type: ignore[attr-defined]
        return run

    def test_runs_until_pool_drains(self):
        pool = RequestPool()
        pool.submit_all(req(i, output_len=3) for i in range(4))
        scheduler = IterationScheduler(pool, self._executor(), max_batch_size=8)
        stats = scheduler.run()
        assert stats.total_tokens == 12
        assert len(pool) == 0

    def test_iteration_boundary_admission(self):
        """Orca's iteration-level scheduling: a late request joins at the
        next iteration boundary, not after the whole batch finishes."""
        pool = RequestPool()
        pool.submit(req(1, output_len=5))
        pool.submit(req(2, output_len=2, arrival=150.0))
        executor = self._executor(latency=100.0)
        scheduler = IterationScheduler(pool, executor, max_batch_size=8)
        scheduler.run()
        # Request 2 arrives at 150 and must appear from iteration 2 on.
        assert executor.calls[0] == [1]
        assert executor.calls[2] == [1, 2]

    def test_batch_size_cap_respected(self):
        pool = RequestPool()
        pool.submit_all(req(i, output_len=1) for i in range(10))
        executor = self._executor()
        scheduler = IterationScheduler(pool, executor, max_batch_size=4)
        scheduler.run()
        assert all(len(call) <= 4 for call in executor.calls)

    def test_finished_requests_leave_batch(self):
        pool = RequestPool()
        pool.submit(req(1, output_len=1))
        pool.submit(req(2, output_len=3))
        executor = self._executor()
        scheduler = IterationScheduler(pool, executor, max_batch_size=8)
        scheduler.run()
        assert executor.calls[0] == [1, 2]
        assert executor.calls[1] == [2]

    def test_throughput_computation(self):
        pool = RequestPool()
        pool.submit(req(1, output_len=10))
        scheduler = IterationScheduler(pool, self._executor(latency=1000.0),
                                       max_batch_size=1)
        stats = scheduler.run()
        # 10 tokens in 10,000 cycles at 1 GHz = 1e6 tokens/s.
        assert stats.throughput_tokens_per_second() == pytest.approx(1e6)

    def test_kv_allocation_grows_and_frees(self):
        pool = RequestPool()
        request = req(1, input_len=64, output_len=4)
        pool.submit(request)
        allocator = PagedKvAllocator(PagedKvConfig(), GPT3_7B)

        def assign(new):
            for r in new:
                r.channel = 0

        scheduler = IterationScheduler(pool, self._executor(),
                                       max_batch_size=4,
                                       allocators=[allocator],
                                       assign_channels=assign)
        scheduler.run()
        assert allocator.free_blocks == allocator.total_blocks

    def test_admission_blocked_without_capacity(self):
        pool = RequestPool()
        # Tiny allocator: one block only.
        config = PagedKvConfig(block_tokens=16,
                               capacity_bytes=2 * 4096 * 2 * 32 * 16)
        allocator = PagedKvAllocator(config, GPT3_7B)
        pool.submit(req(1, input_len=8, output_len=1))
        pool.submit(req(2, input_len=8, output_len=1))

        def assign(new):
            for r in new:
                r.channel = 0

        scheduler = IterationScheduler(pool, self._executor(),
                                       max_batch_size=4,
                                       allocators=[allocator],
                                       assign_channels=assign)
        record = scheduler.run_iteration()
        assert record.batch_size == 1  # second request did not fit

    def test_invalid_executor_latency_raises(self):
        pool = RequestPool()
        pool.submit(req(1))
        scheduler = IterationScheduler(pool, lambda batch: 0.0,
                                       max_batch_size=1)
        with pytest.raises(ValueError):
            scheduler.run_iteration()

    def test_empty_pool_returns_none(self):
        scheduler = IterationScheduler(RequestPool(), self._executor(),
                                       max_batch_size=1)
        assert scheduler.run_iteration() is None
