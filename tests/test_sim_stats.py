"""Unit tests for statistics helpers."""

import pytest

from repro.sim.stats import (
    Counter,
    StatsRegistry,
    UtilizationReport,
    busy_fraction,
    histogram,
    merge_intervals,
    summarize,
    weighted_mean,
)


class TestMergeIntervals:
    def test_disjoint_intervals_preserved(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlapping_intervals_merge(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_touching_intervals_merge(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_unordered_input_is_sorted(self):
        assert merge_intervals([(5, 6), (0, 2)]) == [(0, 2), (5, 6)]

    def test_empty_and_degenerate_intervals_dropped(self):
        assert merge_intervals([(3, 3), (5, 4)]) == []

    def test_nested_intervals_collapse(self):
        assert merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]


class TestBusyFraction:
    def test_half_busy(self):
        assert busy_fraction([(0, 50)], 100) == 0.5

    def test_overlap_not_double_counted(self):
        assert busy_fraction([(0, 50), (25, 50)], 100) == 0.5

    def test_zero_horizon(self):
        assert busy_fraction([(0, 10)], 0) == 0.0

    def test_clamped_to_one(self):
        assert busy_fraction([(0, 200)], 100) == 1.0


class TestCounterRegistry:
    def test_counter_accumulates(self):
        counter = Counter("x")
        counter.add(2)
        counter.add()
        assert counter.value == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_registry_reuses_counters(self):
        registry = StatsRegistry()
        registry.add("a", 1)
        registry.add("a", 2)
        assert registry.get("a") == 3

    def test_registry_missing_counter_is_zero(self):
        assert StatsRegistry().get("nope") == 0.0

    def test_as_dict_sorted(self):
        registry = StatsRegistry()
        registry.add("b")
        registry.add("a")
        assert list(registry.as_dict()) == ["a", "b"]


class TestUtilizationReport:
    def test_utilization_ratio(self):
        report = UtilizationReport(horizon=100.0, busy={"npu": 30.0})
        assert report.utilization("npu") == 0.3

    def test_unknown_resource_is_zero(self):
        report = UtilizationReport(horizon=100.0)
        assert report.utilization("pim") == 0.0

    def test_zero_horizon(self):
        report = UtilizationReport(horizon=0.0, busy={"npu": 5.0})
        assert report.utilization("npu") == 0.0

    def test_as_dict(self):
        report = UtilizationReport(horizon=10.0, busy={"a": 5.0, "b": 20.0})
        assert report.as_dict() == {"a": 0.5, "b": 1.0}


class TestScalarHelpers:
    def test_weighted_mean(self):
        assert weighted_mean([(1.0, 1.0), (3.0, 3.0)]) == 2.5

    def test_weighted_mean_empty(self):
        assert weighted_mean([]) == 0.0

    def test_histogram_bins(self):
        assert histogram([1, 2, 11], 10) == {0.0: 2, 10.0: 1}

    def test_histogram_rejects_bad_width(self):
        with pytest.raises(ValueError):
            histogram([1], 0)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_summarize_empty(self):
        assert summarize([])["count"] == 0
