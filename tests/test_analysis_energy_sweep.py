"""Tests for the energy analysis and the sweep utilities."""

import pytest

from repro.analysis.energy import (
    EnergyParams,
    EnergyReport,
    energy_comparison,
    iteration_energy,
)
from repro.analysis.sweep import (SweepAxis, SweepResult, iter_points,
                                  pareto_front, run_sweep)
from repro.core.device import IterationResult
from repro.exec.backends import ExecutionBackend
from repro.exec.task import TaskError


def result(latency=1e6, npu_busy=0.5e6):
    return IterationResult(latency=latency, busy={"npu": npu_busy})


class TestEnergy:
    def test_energy_per_token_positive(self):
        report = iteration_energy(result(), tokens=100,
                                  memory_power_mw_per_channel=500.0)
        assert report.energy_per_token_mj > 0

    def test_higher_utilization_draws_more_npu_power(self):
        idle = iteration_energy(result(npu_busy=0.1e6), 10, 500.0)
        busy = iteration_energy(result(npu_busy=0.9e6), 10, 500.0)
        assert busy.npu_energy_j > idle.npu_energy_j

    def test_average_power_bracketed(self):
        params = EnergyParams()
        report = iteration_energy(result(), 10, 500.0, params)
        memory_w = 0.5 * params.channels
        assert params.npu_idle_w + memory_w <= report.average_power_w \
            <= params.npu_active_w + memory_w

    def test_table5_style_energy_win(self):
        """Faster iteration at higher power still wins on energy/token —
        the Table 5 argument."""
        naive = iteration_energy(result(latency=2.4e6, npu_busy=0.7e6),
                                 tokens=256, memory_power_mw_per_channel=364.0)
        neupims = iteration_energy(result(latency=1e6, npu_busy=0.65e6),
                                   tokens=256,
                                   memory_power_mw_per_channel=635.0)
        assert neupims.average_power_w > naive.average_power_w
        assert neupims.energy_per_token_mj < naive.energy_per_token_mj

    def test_comparison_validates_inputs(self):
        with pytest.raises(ValueError):
            energy_comparison({"a": result()}, tokens={}, memory_power_mw={})

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            EnergyParams(npu_active_w=10.0, npu_idle_w=60.0)
        with pytest.raises(ValueError):
            iteration_energy(result(), 0, 500.0)

    def test_report_zero_division_guards(self):
        report = EnergyReport(iteration_cycles=0.0, tokens=0,
                              npu_energy_j=0.0, memory_energy_j=0.0)
        assert report.energy_per_token_mj == 0.0
        assert report.average_power_w == 0.0


class TestSweep:
    def test_cartesian_product_evaluated(self):
        axes = [SweepAxis("a", [1, 2]), SweepAxis("b", [10, 20, 30])]
        result = run_sweep(axes, lambda a, b: {"sum": a + b})
        assert len(result.records) == 6
        assert result.filter(a=2, b=30).records[0]["sum"] == 32

    def test_skip_filters_points(self):
        axes = [SweepAxis("tp", [1, 2, 3])]
        result = run_sweep(axes, lambda tp: {"v": tp},
                           skip=lambda tp: tp == 2)
        assert result.column("tp") == [1, 3]

    def test_metric_shadowing_axis_raises(self):
        # Shadowing is only detectable once ``evaluate`` returns inside
        # the task, so it surfaces wrapped in the exec layer's
        # TaskError with the original ValueError chained as the cause.
        with pytest.raises(TaskError, match="metrics shadow axes") as err:
            run_sweep([SweepAxis("a", [1])], lambda a: {"a": 2})
        assert isinstance(err.value.__cause__, ValueError)

    def test_duplicate_axis_names_raise(self):
        with pytest.raises(ValueError):
            run_sweep([SweepAxis("a", [1]), SweepAxis("a", [2])],
                      lambda **kw: {})

    def test_empty_axis_raises(self):
        with pytest.raises(ValueError):
            SweepAxis("a", [])

    def test_best_record(self):
        result = run_sweep([SweepAxis("x", [1, 2, 3])],
                           lambda x: {"score": -x})
        assert result.best("score")["x"] == 1
        assert result.best("score", maximize=False)["x"] == 3

    def test_best_on_empty_raises(self):
        result = run_sweep([SweepAxis("x", [1])], lambda x: {"v": x},
                           skip=lambda x: True)
        with pytest.raises(ValueError):
            result.best("v")

    def test_pareto_front(self):
        result = run_sweep(
            [SweepAxis("x", [1, 2, 3])],
            lambda x: {"throughput": x, "power": x * x})
        front = pareto_front(result, ["throughput", "power"],
                             maximize=[True, False])
        # All three are non-dominated (throughput and power trade off).
        assert len(front) == 3

    def test_pareto_front_dominated_point_removed(self):
        result = run_sweep(
            [SweepAxis("x", [1, 2])],
            lambda x: {"throughput": x, "power": 5.0})
        front = pareto_front(result, ["throughput", "power"],
                             maximize=[True, False])
        assert len(front) == 1
        assert front[0]["x"] == 2

    def test_as_rows(self):
        result = run_sweep([SweepAxis("x", [1, 2])], lambda x: {"y": x * 10})
        assert result.as_rows(["x", "y"]) == [[1, 10], [2, 20]]


class TestFilterMissingKeys:
    """Regression: a record lacking a conditioned key must not match."""

    def test_missing_key_does_not_match_none(self):
        result = SweepResult(axes=["a"],
                             records=[{"a": 1, "m": 2.0}, {"m": 3.0}])
        # Historically `r.get(k) == v` made records without the axis
        # match a condition of None; absence is not a value.
        assert result.filter(a=None).records == []

    def test_missing_key_does_not_match_any_value(self):
        result = SweepResult(axes=["a"],
                             records=[{"a": 1, "m": 2.0}, {"m": 3.0}])
        assert result.filter(a=1).records == [{"a": 1, "m": 2.0}]
        assert result.filter(unknown=1).records == []

    def test_explicit_none_value_still_matches(self):
        result = SweepResult(axes=["a"],
                             records=[{"a": None, "m": 1.0}, {"m": 2.0}])
        assert result.filter(a=None).records == [{"a": None, "m": 1.0}]


class _TakeFirstThree(ExecutionBackend):
    """Backend that consumes only a prefix — proves tasks stream lazily."""

    name = "take3"

    def __init__(self):
        self.saw_sequence = False

    def run(self, tasks):
        self.saw_sequence = isinstance(tasks, (list, tuple))
        iterator = iter(tasks)
        return [next(iterator)() for _ in range(3)]


class TestLazyGrid:
    def test_iter_points_is_lazy_and_ordered(self):
        axes = [SweepAxis("a", [1, 2]), SweepAxis("b", [10, 20])]
        points = iter_points(axes)
        assert not isinstance(points, (list, tuple))
        assert next(points) == {"a": 1, "b": 10}
        assert list(points) == [{"a": 1, "b": 20},
                                {"a": 2, "b": 10}, {"a": 2, "b": 20}]

    def test_iter_points_applies_skip(self):
        axes = [SweepAxis("a", [1, 2, 3])]
        assert [p["a"] for p in iter_points(axes, skip=lambda a: a == 2)] \
            == [1, 3]

    def test_run_sweep_does_not_materialize_grid(self):
        evaluated = []

        def evaluate(a, b):
            evaluated.append((a, b))
            return {"v": a * b}

        backend = _TakeFirstThree()
        # A 10k-point grid: only the three consumed tasks may evaluate
        # (and the task stream itself must not arrive as a sequence).
        result = run_sweep(
            [SweepAxis("a", list(range(100))),
             SweepAxis("b", list(range(100)))],
            evaluate, parallel=backend)
        assert not backend.saw_sequence
        assert len(evaluated) == 3
        assert len(result.records) == 3
