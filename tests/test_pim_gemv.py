"""Unit tests for GEMV descriptors and command-stream builders."""

import pytest

from repro.dram.commands import CommandType
from repro.dram.timing import HbmOrganization
from repro.pim.gemv import (
    GemvOp,
    command_count,
    composite_stream,
    fine_grained_stream,
)


@pytest.fixture
def org():
    return HbmOrganization()


class TestGemvOp:
    def test_waves_formula(self, org):
        op = GemvOp(rows=64, cols=1024)
        # 64 rows / 32 banks = 2 rounds; 1024 cols / 512 per page = 2.
        assert op.waves(org) == 4

    def test_waves_round_up(self, org):
        op = GemvOp(rows=33, cols=513)
        assert op.waves(org) == 2 * 2

    def test_gwrites_cover_vector(self, org):
        assert GemvOp(rows=32, cols=2048).gwrites(org) == 4

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            GemvOp(rows=0, cols=1)


class TestFineGrainedStream:
    def test_structure(self, org):
        op = GemvOp(rows=32, cols=512, tag="t")
        stream = fine_grained_stream(op, org)
        types = [c.ctype for c in stream]
        assert types[0] is CommandType.PIM_GWRITE
        assert types[-1] is CommandType.PIM_RDRESULT
        assert CommandType.PIM_ACTIVATION in types
        assert CommandType.PIM_DOTPRODUCT in types

    def test_activation_groups_cover_all_banks(self, org):
        op = GemvOp(rows=32, cols=512)
        stream = fine_grained_stream(op, org)
        acts = [c for c in stream if c.ctype is CommandType.PIM_ACTIVATION]
        banks = {b for c in acts for b in c.banks}
        assert banks == set(range(org.banks_per_channel))

    def test_command_count_scales_with_waves(self, org):
        small = GemvOp(rows=32, cols=512)
        large = GemvOp(rows=320, cols=512)
        assert command_count(large, org, composite=False) > \
            5 * command_count(small, org, composite=False)

    def test_all_commands_tagged(self, org):
        op = GemvOp(rows=32, cols=512, tag="logit[3]")
        assert all(c.meta == "logit[3]"
                   for c in fine_grained_stream(op, org))


class TestCompositeStream:
    def test_structure(self, org):
        op = GemvOp(rows=320, cols=1024, tag="t")
        stream = composite_stream(op, org)
        types = [c.ctype for c in stream]
        assert types[0] is CommandType.PIM_HEADER
        assert types[-1] is CommandType.PIM_PRECHARGE
        assert types.count(CommandType.PIM_GEMV) == 1

    def test_header_carries_wave_count(self, org):
        op = GemvOp(rows=320, cols=1024)
        stream = composite_stream(op, org)
        header = stream[0]
        gemv = next(c for c in stream if c.ctype is CommandType.PIM_GEMV)
        assert header.k == gemv.k == op.waves(org)

    def test_command_count_constant_in_waves(self, org):
        """Figure 9's point: composite encoding decouples C/A traffic from
        the GEMV size."""
        small = GemvOp(rows=32, cols=512)
        large = GemvOp(rows=3200, cols=512)
        assert command_count(small, org, composite=True) == \
            command_count(large, org, composite=True)

    def test_composite_far_fewer_commands_than_fine_grained(self, org):
        op = GemvOp(rows=640, cols=4096)
        fine = command_count(op, org, composite=False)
        comp = command_count(op, org, composite=True)
        assert fine > 20 * comp

    def test_gwrites_scale_with_vector_width(self, org):
        narrow = composite_stream(GemvOp(rows=32, cols=512), org)
        wide = composite_stream(GemvOp(rows=32, cols=4096), org)
        def gwrites(stream):
            return sum(1 for c in stream
                       if c.ctype is CommandType.PIM_GWRITE)
        assert gwrites(wide) == 8 * gwrites(narrow)
