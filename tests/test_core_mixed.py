"""Tests for mixed prefill+decode iterations."""

import pytest

from repro.core.device import NeuPimsDevice
from repro.core.mixed import (
    MixedBatch,
    compare_deployment_styles,
    mixed_iteration,
    prefill_attention_cycles,
)
from repro.model.spec import GPT3_7B
from repro.serving.request import InferenceRequest

from tests.conftest import make_request


def device(layers=2):
    return NeuPimsDevice(GPT3_7B, tp=4, layers_resident=layers)


def prefill_request(rid, prompt=128):
    return InferenceRequest(rid, input_len=prompt, output_len=32)


class TestMixedBatch:
    def test_gemm_tokens_combine_phases(self):
        batch = MixedBatch(
            decode=[make_request(i) for i in range(4)],
            prefill=[prefill_request(10, 100), prefill_request(11, 50)])
        assert batch.gemm_tokens == 4 + 150

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            MixedBatch(decode=[], prefill=[])


class TestMixedIteration:
    def test_decode_only_close_to_plain_iteration(self):
        d = device()
        decode = [make_request(i, input_len=256) for i in range(32)]
        mixed = mixed_iteration(d, MixedBatch(decode, []))
        plain = d.iteration([make_request(100 + i, input_len=256)
                             for i in range(32)])
        assert mixed.latency == pytest.approx(plain.latency, rel=0.25)

    def test_prefill_work_increases_latency(self):
        d = device()
        decode = [make_request(i, input_len=256) for i in range(32)]
        base = mixed_iteration(d, MixedBatch(list(decode), [])).latency
        with_prefill = mixed_iteration(
            d, MixedBatch(decode, [prefill_request(50, 512)])).latency
        assert with_prefill > base

    def test_prefill_attention_scales_quadratically(self):
        d = device()
        short = prefill_attention_cycles(d, [prefill_request(0, 256)])
        long = prefill_attention_cycles(d, [prefill_request(1, 1024)])
        assert long > 4 * short

    def test_pure_prefill_iteration_has_no_pim_work(self):
        d = device()
        result = mixed_iteration(
            d, MixedBatch([], [prefill_request(0, 256)]))
        assert result.busy["pim"] == 0.0
        assert result.latency > 0

    def test_decode_mha_overlaps_prefill_compute(self):
        """Adding prefill work to a PIM-bound iteration is partly free."""
        d = device()
        decode = [make_request(i, input_len=2048, channel=0)
                  for i in range(8)]
        base = mixed_iteration(d, MixedBatch(list(decode), [])).latency
        combo = mixed_iteration(
            d, MixedBatch(decode, [prefill_request(60, 64)])).latency
        # The small prefill hides inside the long MHA stage.
        assert combo < base * 1.15


class TestDeploymentStyles:
    def test_split_protects_decode_latency(self):
        """The paper's phase-split deployment shields decode iterations
        from prompt work: with prompts offloaded to the standalone NPU,
        the decode iteration stays at its prefill-free latency, while a
        mixed iteration stretches every running request's token time."""
        d = device()
        decode = [make_request(i, input_len=256) for i in range(64)]
        prefill = [prefill_request(100 + i, 1024) for i in range(4)]
        styles = compare_deployment_styles(d, decode, prefill)
        assert styles["split_decode_cycles"] < styles["mixed_cycles"]

    def test_mixed_total_work_bounded_by_serial_sum(self):
        d = device()
        decode = [make_request(i, input_len=256) for i in range(64)]
        prefill = [prefill_request(100 + i, 1024) for i in range(4)]
        styles = compare_deployment_styles(d, decode, prefill)
        serial = (styles["split_decode_cycles"]
                  + styles["split_prefill_cycles"])
        assert styles["mixed_cycles"] < serial

    def test_styles_report_components(self):
        d = device()
        decode = [make_request(i) for i in range(8)]
        styles = compare_deployment_styles(d, decode, [])
        assert styles["split_prefill_cycles"] == 0.0
        assert styles["split_cycles"] == styles["split_decode_cycles"]
