"""Spec round-tripping reproduces bit-identical RunResults.

``ScenarioSpec.from_dict(spec.to_dict())`` must drive the exact same
simulation — serially, and when fanned across a process pool (gated on
available cores, per the CI single-CPU runners).
"""

import json

import pytest

from repro.api import (ScenarioSpec, ServingSpec, TrafficSpec, run_scenario,
                       run_scenarios)
from repro.exec import ProcessPoolBackend, available_workers

#: Small but heterogeneous scenarios covering every run mode.
SCENARIOS = [
    ScenarioSpec(model="gpt3-7b", layers_resident=2, fidelity="analytic",
                 traffic=TrafficSpec.warmed(batch_size=16, seed=3)),
    ScenarioSpec(model="gpt3-7b", system="npu-pim", layers_resident=2,
                 fidelity="analytic",
                 traffic=TrafficSpec.warmed(batch_size=16, num_batches=2,
                                            seed=3)),
    ScenarioSpec(model="gpt3-7b", tp=2, pp=2, fidelity="analytic",
                 traffic=TrafficSpec.warmed(batch_size=16, seed=1)),
    ScenarioSpec(model="gpt3-7b", layers_resident=8, fidelity="analytic",
                 traffic=TrafficSpec.poisson(dataset="alpaca",
                                             rate_per_kcycle=0.02,
                                             horizon_cycles=5e6, seed=7,
                                             max_requests=12),
                 serving=ServingSpec(max_batch_size=8)),
]


def round_tripped(spec):
    """spec -> dict -> JSON -> dict -> spec."""
    return ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))


@pytest.mark.parametrize("index", range(len(SCENARIOS)))
def test_serial_round_trip_bit_identical(index):
    spec = SCENARIOS[index]
    restored = round_tripped(spec)
    assert restored == spec
    original = run_scenario(spec)
    replayed = run_scenario(restored)
    assert replayed == original
    assert replayed.to_dict() == original.to_dict()


def test_serial_fanout_matches_individual_runs():
    expected = [run_scenario(spec) for spec in SCENARIOS]
    fanned = run_scenarios([round_tripped(s) for s in SCENARIOS])
    assert fanned == expected


@pytest.mark.skipif(available_workers() < 2,
                    reason="multi-worker assert needs >= 2 cores")
def test_process_pool_round_trip_bit_identical():
    expected = [run_scenario(spec) for spec in SCENARIOS]
    backend = ProcessPoolBackend(workers=2)
    pooled = run_scenarios([round_tripped(s) for s in SCENARIOS],
                           parallel=backend)
    assert pooled == expected


@pytest.mark.skipif(available_workers() < 2,
                    reason="multi-worker assert needs >= 2 cores")
def test_process_pool_accepts_spec_dicts():
    """Worker-side from_dict: raw to_dict payloads are valid task args."""
    from repro.exec.runner import ParallelRunner
    payloads = [json.loads(json.dumps(s.to_dict())) for s in SCENARIOS[:2]]
    runner = ParallelRunner(ProcessPoolBackend(workers=2))
    results = runner.map(run_scenario, payloads)
    assert results == [run_scenario(s) for s in SCENARIOS[:2]]
