"""Unit tests for DRAM/PIM command definitions."""

import pytest

from repro.dram.commands import (
    COMPOSITE_COMMANDS,
    PIM_COMMANDS,
    BufferTarget,
    Command,
    CommandType,
    buffer_target,
    ca_bus_cycles,
)


class TestCommandSets:
    def test_composite_is_subset_of_pim(self):
        assert COMPOSITE_COMMANDS <= PIM_COMMANDS

    def test_neupims_isa_additions(self):
        """Table 1: PIM_HEADER, PIM_GEMV, PIM_PRECHARGE."""
        assert COMPOSITE_COMMANDS == {
            CommandType.PIM_HEADER,
            CommandType.PIM_GEMV,
            CommandType.PIM_PRECHARGE,
        }

    def test_regular_commands_not_pim(self):
        for ctype in (CommandType.ACT, CommandType.PRE, CommandType.RD,
                      CommandType.WR, CommandType.REF):
            assert ctype not in PIM_COMMANDS


class TestBufferTargets:
    def test_mem_commands_target_mem_buffer(self):
        for ctype in (CommandType.ACT, CommandType.PRE, CommandType.RD,
                      CommandType.WR):
            assert buffer_target(ctype) is BufferTarget.MEM

    def test_pim_execution_commands_target_pim_buffer(self):
        for ctype in (CommandType.PIM_ACTIVATION, CommandType.PIM_DOTPRODUCT,
                      CommandType.PIM_GEMV, CommandType.PIM_PRECHARGE):
            assert buffer_target(ctype) is BufferTarget.PIM

    def test_header_and_refresh_target_none(self):
        assert buffer_target(CommandType.PIM_HEADER) is BufferTarget.NONE
        assert buffer_target(CommandType.REF) is BufferTarget.NONE


class TestCommandValidation:
    def test_activation_requires_bank_group(self):
        with pytest.raises(ValueError):
            Command(CommandType.PIM_ACTIVATION, row=0)

    def test_gemv_requires_positive_k(self):
        with pytest.raises(ValueError):
            Command(CommandType.PIM_GEMV)

    def test_act_requires_bank_and_row(self):
        with pytest.raises(ValueError):
            Command(CommandType.ACT, bank=0)
        with pytest.raises(ValueError):
            Command(CommandType.ACT, row=0)

    def test_rd_requires_bank(self):
        with pytest.raises(ValueError):
            Command(CommandType.RD)

    def test_is_pim_flag(self):
        assert Command(CommandType.PIM_HEADER).is_pim
        assert not Command(CommandType.RD, bank=0).is_pim

    def test_is_composite_flag(self):
        assert Command(CommandType.PIM_GEMV, k=2).is_composite
        assert not Command(CommandType.PIM_DOTPRODUCT).is_composite

    def test_target_property(self):
        assert Command(CommandType.PRE, bank=1).target is BufferTarget.MEM


class TestBusCycles:
    def test_regular_commands_take_one_cycle(self):
        for ctype in (CommandType.ACT, CommandType.PRE, CommandType.RD,
                      CommandType.WR, CommandType.REF):
            assert ca_bus_cycles(ctype) == 1

    def test_pim_commands_cost_more_bus_cycles(self):
        """The paper's premise for PIM-priority scheduling: PIM commands
        have larger issuing delay than memory commands."""
        for ctype in PIM_COMMANDS:
            assert ca_bus_cycles(ctype) > 1

    def test_composite_commands_carry_payload(self):
        assert ca_bus_cycles(CommandType.PIM_GEMV) >= \
            ca_bus_cycles(CommandType.PIM_DOTPRODUCT)
