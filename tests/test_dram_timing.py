"""Unit tests for DRAM timing and organization parameters (Table 2)."""

import pytest

from repro.dram.timing import (
    DEFAULT_ORGANIZATION,
    DEFAULT_PIM_TIMING,
    DEFAULT_TIMING,
    HbmOrganization,
    PimTiming,
    TimingParams,
)


class TestTable2Timing:
    def test_table2_values(self):
        t = DEFAULT_TIMING
        assert (t.tRP, t.tRCD, t.tRAS) == (14, 14, 34)
        assert (t.tRRD_L, t.tWR) == (6, 16)
        assert (t.tCCD_S, t.tCCD_L) == (1, 2)
        assert (t.tREFI, t.tRFC, t.tFAW) == (3900, 260, 30)

    def test_row_cycle(self):
        assert DEFAULT_TIMING.row_cycle == 48

    def test_refresh_overhead_fraction(self):
        assert DEFAULT_TIMING.refresh_overhead == pytest.approx(260 / 3900)

    def test_nonpositive_parameter_raises(self):
        with pytest.raises(ValueError):
            TimingParams(tRP=0)

    def test_tras_less_than_trcd_raises(self):
        with pytest.raises(ValueError):
            TimingParams(tRAS=5, tRCD=14)

    def test_tfaw_less_than_trrd_raises(self):
        with pytest.raises(ValueError):
            TimingParams(tFAW=3, tRRD_L=6)


class TestOrganization:
    def test_table2_organization(self):
        org = DEFAULT_ORGANIZATION
        assert org.channels == 32
        assert org.banks_per_channel == 32
        assert org.banks_per_group == 4
        assert org.capacity_per_channel == 1 << 30
        assert org.page_bytes == 1024

    def test_bank_groups(self):
        assert DEFAULT_ORGANIZATION.bank_groups == 8

    def test_total_capacity_is_32gb(self):
        assert DEFAULT_ORGANIZATION.total_capacity == 32 * (1 << 30)

    def test_bandwidth_aggregates_over_channels(self):
        org = DEFAULT_ORGANIZATION
        assert org.total_bandwidth == org.channel_bandwidth * 32

    def test_rows_per_bank(self):
        org = DEFAULT_ORGANIZATION
        assert org.rows_per_bank() == (1 << 30) // 32 // 1024

    def test_elements_per_page_fp16(self):
        assert DEFAULT_ORGANIZATION.elements_per_page(2) == 512

    def test_elements_per_page_invalid_dtype(self):
        with pytest.raises(ValueError):
            DEFAULT_ORGANIZATION.elements_per_page(0)

    def test_bank_group_divisibility_enforced(self):
        with pytest.raises(ValueError):
            HbmOrganization(banks_per_channel=30, banks_per_group=4)

    def test_nonpositive_field_raises(self):
        with pytest.raises(ValueError):
            HbmOrganization(channels=0)


class TestPimTiming:
    def test_dotprod_cycles_per_page(self):
        pim = DEFAULT_PIM_TIMING
        chunks = 1024 // pim.chunk_bytes
        assert pim.dotprod_cycles_per_page(1024) == \
            chunks * pim.dotprod_cycles_per_chunk

    def test_dotprod_rounds_up_partial_chunk(self):
        pim = PimTiming(chunk_bytes=32, dotprod_cycles_per_chunk=2)
        assert pim.dotprod_cycles_per_page(33) == 4

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            PimTiming(gwrite_cycles=0)
