"""Unit tests for the KV-cache PIM layout (paper §6.3)."""

import pytest

from repro.dram.timing import HbmOrganization
from repro.model.spec import GPT3_7B, GPT3_30B
from repro.pim.layout import KvLayout


@pytest.fixture
def layout():
    return KvLayout(HbmOrganization(), dtype_bytes=2)


class TestLayoutParameters:
    def test_elements_per_page_is_p_dram(self, layout):
        assert layout.elements_per_page == 512

    def test_banks_is_b_chnl(self, layout):
        assert layout.banks == 32


class TestKeyTiles:
    def test_key_tiles_formula(self, layout):
        # seq 64 over 32 banks = 2 rounds; E 4096 / 512 = 8 pages.
        assert layout.key_tiles(GPT3_7B, 64) == 16

    def test_key_tiles_round_up_partial_bank_round(self, layout):
        assert layout.key_tiles(GPT3_7B, 33) == 2 * 8

    def test_key_tiles_monotonic_in_seq(self, layout):
        tiles = [layout.key_tiles(GPT3_7B, s) for s in (32, 64, 128, 256)]
        assert tiles == sorted(tiles)
        assert tiles[-1] > tiles[0]

    def test_key_gwrites_cover_embedding(self, layout):
        assert layout.key_gwrites(GPT3_7B) == 8
        assert layout.key_gwrites(GPT3_30B) == 14

    def test_invalid_seq_raises(self, layout):
        with pytest.raises(ValueError):
            layout.key_tiles(GPT3_7B, 0)


class TestValueTiles:
    def test_value_tiles_formula(self, layout):
        # head_dim 128 / 32 banks = 4 rounds; seq 512 = 1 page; 32 heads.
        assert layout.value_tiles(GPT3_7B, 512) == 4 * 1 * 32

    def test_value_tiles_scale_with_heads(self, layout):
        assert layout.value_tiles(GPT3_30B, 512) == 4 * 1 * 56

    def test_value_gwrites_per_head(self, layout):
        assert layout.value_gwrites(GPT3_7B, 512) == 32
        assert layout.value_gwrites(GPT3_7B, 1024) == 64

    def test_invalid_seq_raises(self, layout):
        with pytest.raises(ValueError):
            layout.value_tiles(GPT3_7B, -1)


class TestCapacity:
    def test_kv_rows_scale_with_seq(self, layout):
        assert layout.kv_rows_for_request(GPT3_7B, 256) > \
            layout.kv_rows_for_request(GPT3_7B, 64)

    def test_kv_rows_formula(self, layout):
        # 2 * 64 * 4096 * 2 bytes over 32 banks, 1KB pages.
        expected = (2 * 64 * 4096 * 2 // 32) // 1024
        assert layout.kv_rows_for_request(GPT3_7B, 64) == expected

    def test_reasonable_batch_fits_channel(self, layout):
        # A 1GB channel holds tens of thousands of tokens of 7B KV cache.
        assert layout.fits(GPT3_7B, total_tokens=20_000)

    def test_absurd_context_does_not_fit(self, layout):
        assert not layout.fits(GPT3_7B, total_tokens=50_000_000)

    def test_reserved_rows_reduce_capacity(self, layout):
        rows = layout.org.rows_per_bank()
        assert not layout.fits(GPT3_7B, total_tokens=20_000,
                               reserved_rows=rows)
