"""Unit tests for the MHA latency estimator (Algorithm 1)."""

import pytest

from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.dram.timing import HbmOrganization, PimTiming, TimingParams
from repro.model.spec import GPT3_7B, GPT3_30B
from repro.pim.engine import CalibratedLatencies


@pytest.fixture
def estimator():
    return MhaLatencyEstimator(spec=GPT3_7B, org=HbmOrganization(),
                               latencies=analytic_latencies())


class TestAnalyticLatencies:
    def test_l_tile_at_least_page_mac(self):
        cal = analytic_latencies()
        mac = PimTiming().dotprod_cycles_per_page(1024)
        assert cal.l_tile >= mac

    def test_l_gwrite_matches_timing(self):
        assert analytic_latencies().l_gwrite == PimTiming().gwrite_cycles

    def test_custom_timing_respected(self):
        slow = PimTiming(gwrite_cycles=500)
        assert analytic_latencies(pim_timing=slow).l_gwrite == 500


class TestAlgorithm1:
    def test_logit_latency_formula(self, estimator):
        """Line 2-4: N_tiles = (seq/B_chnl)(E/P_DRAM), plus GWRITEs."""
        seq = 256
        cal = analytic_latencies()
        embed_pages = 4096 / 512
        expected = cal.l_gwrite * embed_pages \
            + cal.l_tile * (seq / 32) * embed_pages
        assert estimator.logit_latency(seq) == pytest.approx(expected)

    def test_attend_latency_formula(self, estimator):
        """Line 5-7: N_tiles = ((E/heads)/B)(seq/P)·heads, plus GWRITEs."""
        seq = 512
        cal = analytic_latencies()
        expected = cal.l_gwrite * (seq / 512) * 32 \
            + cal.l_tile * (128 / 32) * (seq / 512) * 32
        assert estimator.attend_latency(seq) == pytest.approx(expected)

    def test_estimate_is_logit_plus_attend(self, estimator):
        seq = 300
        assert estimator.estimate(seq) == pytest.approx(
            estimator.logit_latency(seq) + estimator.attend_latency(seq))

    def test_estimate_monotonic_in_seq(self, estimator):
        values = [estimator.estimate(s) for s in (16, 64, 256, 1024)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_estimate_scales_linearly_for_long_seqs(self, estimator):
        """Above the page/bank granularity, latency is linear in seq."""
        ratio = estimator.estimate(4096) / estimator.estimate(2048)
        assert ratio == pytest.approx(2.0, rel=0.1)

    def test_minimum_one_tile(self, estimator):
        """Very short sequences still pay at least one wave per GEMV."""
        cal = analytic_latencies()
        assert estimator.estimate(1) >= 2 * cal.l_tile

    def test_larger_model_higher_latency(self):
        org = HbmOrganization()
        cal = analytic_latencies()
        small = MhaLatencyEstimator(GPT3_7B, org, cal)
        large = MhaLatencyEstimator(GPT3_30B, org, cal)
        assert large.estimate(256) > small.estimate(256)

    def test_estimate_batch_sums(self, estimator):
        seqs = [10, 20, 30]
        assert estimator.estimate_batch(seqs) == pytest.approx(
            sum(estimator.estimate(s) for s in seqs))

    def test_invalid_seq_raises(self, estimator):
        with pytest.raises(ValueError):
            estimator.estimate(0)

    def test_more_banks_reduce_logit_latency(self):
        cal = analytic_latencies()
        few = MhaLatencyEstimator(
            GPT3_7B, HbmOrganization(banks_per_channel=16,
                                     banks_per_group=4), cal)
        many = MhaLatencyEstimator(
            GPT3_7B, HbmOrganization(banks_per_channel=32,
                                     banks_per_group=4), cal)
        assert few.logit_latency(1024) > many.logit_latency(1024)


class TestCalibrationCrossCheck:
    """The analytic constants agree with the command-level measurement —
    the link between the two simulation granularities (DESIGN.md §2)."""

    def test_measured_l_tile_close_to_analytic(self):
        from repro.pim.engine import calibrate
        measured = calibrate()
        analytic = analytic_latencies()
        assert measured.l_tile == pytest.approx(analytic.l_tile, rel=0.5)

    def test_estimator_tracks_command_level_scaling(self):
        """Doubling the GEMV rows roughly doubles both the estimate and
        the measured command-level latency."""
        from repro.pim.engine import measure_gemv_latency
        from repro.pim.gemv import GemvOp
        t1, _ = measure_gemv_latency(GemvOp(rows=32 * 8, cols=512),
                                     refresh=False)
        t2, _ = measure_gemv_latency(GemvOp(rows=32 * 16, cols=512),
                                     refresh=False)
        assert t2 / t1 == pytest.approx(2.0, rel=0.35)
