"""Unit tests for channel load balancing (Algorithm 2)."""

import pytest

from repro.core.binpack import (
    channel_loads,
    greedy_min_load_assign,
    load_imbalance,
    round_robin_assign,
)
from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.dram.timing import HbmOrganization
from repro.model.spec import GPT3_7B

from tests.conftest import make_request


@pytest.fixture
def estimator():
    return MhaLatencyEstimator(GPT3_7B, HbmOrganization(),
                               analytic_latencies())


class TestGreedyAssign:
    def test_all_requests_assigned(self, estimator):
        requests = [make_request(i, input_len=32 * (i + 1)) for i in range(10)]
        assignment = greedy_min_load_assign(requests, estimator, 4)
        assert len(assignment) == 10
        assert all(r.channel is not None for r in requests)
        assert all(0 <= c < 4 for c in assignment.values())

    def test_longest_request_goes_first_to_empty_channel(self, estimator):
        requests = [make_request(0, input_len=10),
                    make_request(1, input_len=1000)]
        assignment = greedy_min_load_assign(requests, estimator, 4)
        # LPT order: request 1 (longest) is placed first, on channel 0.
        assert assignment[1] == 0

    def test_balances_better_than_round_robin(self, estimator):
        """The Figure 13 GMLBP claim: greedy min-load beats round robin
        for skewed sequence lengths."""
        lengths = [2000, 1500, 1000, 900, 100, 90, 80, 70]
        greedy_reqs = [make_request(i, input_len=n)
                       for i, n in enumerate(lengths)]
        rr_reqs = [make_request(i, input_len=n)
                   for i, n in enumerate(lengths)]
        greedy_min_load_assign(greedy_reqs, estimator, 4)
        round_robin_assign(rr_reqs, 4)
        greedy_imbalance = load_imbalance(
            channel_loads(greedy_reqs, estimator, 4))
        rr_imbalance = load_imbalance(channel_loads(rr_reqs, estimator, 4))
        assert greedy_imbalance < rr_imbalance

    def test_existing_load_considered(self, estimator):
        existing = [make_request(0, input_len=4000, channel=0)]
        new = [make_request(1, input_len=100)]
        assignment = greedy_min_load_assign(new, estimator, 2,
                                            existing=existing)
        assert assignment[1] == 1

    def test_equal_loads_prefer_lowest_index(self, estimator):
        new = [make_request(0, input_len=64)]
        assignment = greedy_min_load_assign(new, estimator, 8)
        assert assignment[0] == 0

    def test_invalid_channel_count_raises(self, estimator):
        with pytest.raises(ValueError):
            greedy_min_load_assign([], estimator, 0)


class TestRoundRobin:
    def test_cycles_through_channels(self):
        requests = [make_request(i) for i in range(6)]
        assignment = round_robin_assign(requests, 4)
        assert [assignment[i] for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_start_offset(self):
        requests = [make_request(i) for i in range(3)]
        assignment = round_robin_assign(requests, 4, start=3)
        assert [assignment[i] for i in range(3)] == [3, 0, 1]

    def test_invalid_channel_count_raises(self):
        with pytest.raises(ValueError):
            round_robin_assign([], 0)


class TestLoads:
    def test_channel_loads_sum_estimates(self, estimator):
        requests = [make_request(0, input_len=100, channel=1),
                    make_request(1, input_len=200, channel=1)]
        loads = channel_loads(requests, estimator, 2)
        assert loads[0] == 0.0
        assert loads[1] == pytest.approx(
            estimator.estimate(100) + estimator.estimate(200))

    def test_unassigned_requests_skipped(self, estimator):
        loads = channel_loads([make_request(0)], estimator, 2)
        assert loads == [0.0, 0.0]

    def test_invalid_channel_raises(self, estimator):
        with pytest.raises(ValueError):
            channel_loads([make_request(0, channel=5)], estimator, 2)

    def test_load_imbalance_perfect(self):
        assert load_imbalance([10.0, 10.0]) == 1.0

    def test_load_imbalance_empty(self):
        assert load_imbalance([]) == 1.0

    def test_load_imbalance_zero_loads(self):
        assert load_imbalance([0.0, 0.0]) == 1.0
