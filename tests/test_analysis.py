"""Unit tests for the analysis package (metrics, area, reporting)."""

import pytest

from repro.analysis.area import BankAreaModel, dual_row_buffer_area_overhead
from repro.analysis.metrics import (
    build_standard_devices,
    compare_systems,
    iteration_throughput,
    measure_device,
)
from repro.analysis.report import format_series, format_table, geomean, normalize
from repro.core.config import NeuPimsConfig
from repro.core.device import IterationResult, NeuPimsDevice
from repro.model.spec import GPT3_7B
from repro.serving.trace import SHAREGPT


class TestArea:
    def test_headline_overhead_near_paper(self):
        """§8.2: CACTI reports ~3.11% for the dual row buffer."""
        assert dual_row_buffer_area_overhead() == pytest.approx(0.0311,
                                                                abs=0.005)

    def test_overhead_scales_with_latch_factor(self):
        model = BankAreaModel()
        assert model.dual_row_buffer_overhead(1.0) > \
            model.dual_row_buffer_overhead(0.0)

    def test_invalid_shares_raise(self):
        with pytest.raises(ValueError):
            BankAreaModel(cell_mat_share=0.9, row_decoder_share=0.1,
                          sense_amp_share=0.1, column_circuitry_share=0.1)

    def test_negative_latch_factor_raises(self):
        with pytest.raises(ValueError):
            BankAreaModel().dual_row_buffer_overhead(-0.1)

    def test_pim_logic_overhead(self):
        assert BankAreaModel().pim_logic_overhead() == 0.03


class TestMetrics:
    def test_iteration_throughput(self):
        result = IterationResult(latency=1000.0)
        # 10 tokens / 1 us = 1e7 tokens/s.
        assert iteration_throughput(result, 10) == pytest.approx(1e7)

    def test_iteration_throughput_zero_latency(self):
        assert iteration_throughput(IterationResult(latency=0.0), 10) == 0.0

    def test_measure_device_returns_measurement(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        m = measure_device("NeuPIMs", device.iteration, GPT3_7B, SHAREGPT,
                           batch_size=16, num_batches=2,
                           config=NeuPimsConfig())
        assert m.tokens_per_second > 0
        assert m.batch_size == 16
        assert "bandwidth" in m.utilization

    def test_build_standard_devices_has_four_systems(self):
        devices = build_standard_devices(GPT3_7B, tp=4, layers_resident=2)
        assert set(devices) == {"GPU-only", "NPU-only", "NPU+PIM", "NeuPIMs"}

    def test_compare_systems_ordering(self):
        """The Figure 12 ordering: NeuPIMs >= NPU+PIM >= NPU-only."""
        results = compare_systems(GPT3_7B, SHAREGPT, batch_size=128, tp=4,
                                  layers_resident=2, num_batches=2)
        assert results["NeuPIMs"].tokens_per_second > \
            results["NPU+PIM"].tokens_per_second
        assert results["NPU+PIM"].tokens_per_second >= \
            0.95 * results["NPU-only"].tokens_per_second

    def test_speedup_over(self):
        results = compare_systems(GPT3_7B, SHAREGPT, batch_size=64, tp=4,
                                  layers_resident=2, num_batches=1)
        speedup = results["NeuPIMs"].speedup_over(results["NPU-only"])
        assert speedup > 1.0


class TestReport:
    def test_format_table_aligns(self):
        table = format_table(["a", "bbbb"], [[1, 2.5], ["x", 10000.0]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert "10,000" in table

    def test_format_table_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("s", {64: 1.5, 128: 2.0}, unit="x")
        assert "64 -> 1.500 x" in text

    def test_normalize(self):
        assert normalize({"a": 2.0, "b": 4.0}, "a") == {"a": 1.0, "b": 2.0}

    def test_normalize_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            normalize({"a": 0.0}, "a")

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_empty(self):
        assert geomean([]) == 0.0
