"""Unit tests for the NeuPIMs device model."""

import pytest

from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice, shard_for_mha
from repro.model.spec import GPT3_7B
from repro.serving.trace import SHAREGPT, warmed_batch

from tests.conftest import make_request


def device_with(config=None, layers=4, tp=1):
    return NeuPimsDevice(GPT3_7B, config or NeuPimsConfig(), tp=tp,
                         layers_resident=layers)


def batch(n=32, seed=0):
    return warmed_batch(SHAREGPT, n, seed=seed)


class TestGemmStage:
    def test_qkv_and_projffn_positive(self):
        gemm = device_with().gemm_stage_cycles(64)
        assert gemm.qkv_cycles > 0
        assert gemm.projffn_cycles > gemm.qkv_cycles  # 3 GEMMs vs 1

    def test_bytes_scale_with_model_not_batch_when_memory_bound(self):
        device = device_with()
        small = device.gemm_stage_cycles(8)
        large = device.gemm_stage_cycles(16)
        # Weights dominate: doubling tiny batches barely moves bytes.
        assert large.external_bytes < 1.2 * small.external_bytes

    def test_tp_reduces_gemm_time(self):
        full = device_with(tp=1).gemm_stage_cycles(256)
        shard = device_with(tp=4).gemm_stage_cycles(256)
        assert shard.total_cycles < full.total_cycles

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            device_with().gemm_stage_cycles(0)


class TestMhaStage:
    def test_empty_batch_zero(self):
        stage = device_with().mha_stage([])
        assert stage.pim_cycles == 0.0

    def test_pim_time_is_max_channel_load(self):
        device = device_with()
        reqs = [make_request(0, input_len=512, channel=0),
                make_request(1, input_len=512, channel=0),
                make_request(2, input_len=512, channel=1)]
        stage = device.mha_stage(reqs)
        expected = 2 * device.estimator.estimate(512)
        assert stage.pim_cycles == pytest.approx(expected)

    def test_blocked_mode_slower(self):
        reqs = [make_request(i, input_len=256, channel=i % 4)
                for i in range(8)]
        fast = device_with(NeuPimsConfig()).mha_stage(reqs)
        slow = device_with(NeuPimsConfig.naive_npu_pim()).mha_stage(reqs)
        assert slow.duration(False) > 1.5 * fast.duration(True)

    def test_dual_row_buffer_overlaps_softmax(self):
        device = device_with()
        reqs = [make_request(i, input_len=256, channel=0) for i in range(4)]
        stage = device.mha_stage(reqs)
        assert stage.duration(dual_row_buffer=True) == pytest.approx(
            max(stage.pim_cycles, stage.softmax_cycles))

    def test_internal_bytes_track_kv(self):
        device = device_with()
        reqs = [make_request(0, input_len=100, channel=0)]
        stage = device.mha_stage(reqs)
        assert stage.internal_bytes == 2 * 100 * 4096 * 2


class TestChannelAssignment:
    def test_greedy_config_uses_binpack(self):
        device = device_with(NeuPimsConfig())
        reqs = [make_request(i, input_len=100 * (i + 1)) for i in range(8)]
        device.assign_channels(reqs)
        assert all(r.channel is not None for r in reqs)

    def test_round_robin_config_cycles(self):
        device = device_with(NeuPimsConfig.naive_npu_pim())
        reqs = [make_request(i) for i in range(4)]
        device.assign_channels(reqs)
        assert [r.channel for r in reqs] == [0, 1, 2, 3]

    def test_round_robin_cursor_advances(self):
        device = device_with(NeuPimsConfig.naive_npu_pim())
        first = [make_request(i) for i in range(3)]
        second = [make_request(10 + i) for i in range(2)]
        device.assign_channels(first)
        device.assign_channels(second)
        assert [r.channel for r in second] == [3, 4]

    def test_iteration_assigns_unassigned(self):
        device = device_with()
        reqs = batch(16)
        assert all(r.channel is None for r in reqs)
        device.iteration(reqs)
        assert all(r.channel is not None for r in reqs)


class TestIteration:
    def test_latency_positive_and_scales_with_layers(self):
        reqs = batch(16)
        shallow = device_with(layers=2).iteration(reqs).latency
        deep = device_with(layers=8).iteration(reqs).latency
        assert deep > 3 * shallow

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            device_with().iteration([])

    def test_serialized_latency_is_sum_of_stages(self):
        config = NeuPimsConfig(sub_batch_interleaving=False)
        device = device_with(config, layers=3)
        reqs = batch(16)
        result = device.iteration(reqs)
        gemm = device.gemm_stage_cycles(16)
        mha = device.mha_stage(reqs)
        expected = (gemm.total_cycles + mha.duration(True)) * 3
        assert result.latency == pytest.approx(expected)

    def test_interleaving_beats_serialized_at_large_batch(self):
        """Figure 13: SBI wins for batch >= 256."""
        reqs = batch(256)
        config_sbi = NeuPimsConfig(adaptive_sbi=False)
        config_ser = NeuPimsConfig(sub_batch_interleaving=False)
        t_sbi = device_with(config_sbi, layers=4, tp=4).iteration(reqs).latency
        reqs2 = batch(256)
        t_ser = device_with(config_ser, layers=4, tp=4).iteration(reqs2).latency
        assert t_sbi < t_ser

    def test_adaptive_sbi_never_worse_than_serialized(self):
        for size in (2, 8, 64):
            reqs = batch(size, seed=size)
            adaptive = device_with(NeuPimsConfig(), layers=2, tp=4)
            serialized = device_with(
                NeuPimsConfig(sub_batch_interleaving=False), layers=2, tp=4)
            t_a = adaptive.iteration(reqs).latency
            reqs2 = batch(size, seed=size)
            t_s = serialized.iteration(reqs2).latency
            assert t_a <= t_s * 1.0001

    def test_single_request_falls_back_to_serialized(self):
        device = device_with()
        result = device.iteration([make_request(0, input_len=64, channel=0)])
        assert result.latency > 0

    def test_utilization_accounting(self):
        device = device_with()
        result = device.iteration(batch(64))
        assert 0 < result.utilization("npu") <= 1
        assert 0 < result.utilization("pim") <= 1
        assert result.external_bytes > 0
        assert result.internal_pim_bytes > 0

    def test_neupims_npu_utilization_beats_naive(self):
        """Table 4's headline: concurrent execution raises NPU util."""
        reqs = batch(128)
        neupims = device_with(NeuPimsConfig(), layers=4, tp=4)
        res_neu = neupims.iteration(reqs)
        reqs2 = batch(128)
        naive = device_with(NeuPimsConfig.naive_npu_pim(), layers=4, tp=4)
        res_naive = naive.iteration(reqs2)
        assert res_neu.utilization("npu") > 1.5 * res_naive.utilization("npu")

    def test_executor_returns_latency(self):
        device = device_with()
        reqs = batch(8)
        assert device.executor()(reqs) == pytest.approx(
            device.iteration(reqs).latency)


class TestShardForMha:
    def test_shard_divides_heads(self):
        shard = shard_for_mha(GPT3_7B, 4)
        assert shard.num_heads == 8
        assert shard.d_model == 8 * 128

    def test_shard_preserves_head_dim(self):
        assert shard_for_mha(GPT3_7B, 2).head_dim == GPT3_7B.head_dim
