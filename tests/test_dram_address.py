"""Tests for the physical address mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import (
    AddressMapper,
    BankInterleaved,
    ChannelInterleaved,
    Coordinates,
)
from repro.dram.timing import HbmOrganization


class TestChannelInterleaved:
    def test_consecutive_lines_rotate_channels(self):
        mapper = ChannelInterleaved()
        a = mapper.decode(0)
        b = mapper.decode(64)
        assert a.channel == 0
        assert b.channel == 1

    def test_within_line_same_location(self):
        mapper = ChannelInterleaved()
        a = mapper.decode(0)
        b = mapper.decode(63)
        assert (a.channel, a.bank, a.row) == (b.channel, b.bank, b.row)

    def test_roundtrip_selected_addresses(self):
        mapper = ChannelInterleaved()
        for address in (0, 64, 4096, 123456, mapper.total_bytes - 1):
            coords = mapper.decode(address)
            assert mapper.encode(coords) == address

    @given(address=st.integers(min_value=0, max_value=32 * (1 << 30) - 1))
    @settings(max_examples=100)
    def test_roundtrip_property(self, address):
        mapper = ChannelInterleaved()
        assert mapper.encode(mapper.decode(address)) == address

    def test_out_of_range_raises(self):
        mapper = ChannelInterleaved()
        with pytest.raises(ValueError):
            mapper.decode(mapper.total_bytes)

    def test_bank_group_derived(self):
        assert Coordinates(channel=0, bank=7, row=0, column=0).bank_group == 1

    def test_invalid_line_size_raises(self):
        with pytest.raises(ValueError):
            ChannelInterleaved(line_bytes=0)
        with pytest.raises(ValueError):
            AddressMapper(HbmOrganization(page_bytes=1024), line_bytes=48)


class TestBankInterleaved:
    def test_consecutive_pages_rotate_banks(self):
        mapper = BankInterleaved(channel=3)
        a = mapper.decode(0)
        b = mapper.decode(1024)
        assert a.bank == 0 and b.bank == 1
        assert a.channel == b.channel == 3

    def test_row_advances_after_full_bank_round(self):
        org = HbmOrganization()
        mapper = BankInterleaved(channel=0, org=org)
        coords = mapper.decode(org.banks_per_channel * org.page_bytes)
        assert coords.bank == 0
        assert coords.row == 1

    def test_base_row_offset(self):
        mapper = BankInterleaved(channel=0, base_row=100)
        assert mapper.decode(0).row == 100

    @given(address=st.integers(min_value=0, max_value=1 << 24))
    @settings(max_examples=100)
    def test_roundtrip_property(self, address):
        mapper = BankInterleaved(channel=5)
        assert mapper.encode(mapper.decode(address)) == address

    def test_encode_foreign_channel_raises(self):
        mapper = BankInterleaved(channel=0)
        with pytest.raises(ValueError):
            mapper.encode(Coordinates(channel=1, bank=0, row=0, column=0))

    def test_invalid_channel_raises(self):
        with pytest.raises(ValueError):
            BankInterleaved(channel=99)

    def test_matrix_rows_land_on_cyclic_banks(self):
        """The §6.3 KV layout: row i of a (page-sized-row) matrix lands on
        bank i mod banks — what Algorithm 1's wave count assumes."""
        org = HbmOrganization()
        mapper = BankInterleaved(channel=0, org=org)
        for row_index in (0, 1, 31, 32, 65):
            coords = mapper.matrix_row_location(row_index, row_bytes=1024)
            assert coords.bank == row_index % org.banks_per_channel

    def test_capacity_respects_base_row(self):
        full = BankInterleaved(channel=0)
        offset = BankInterleaved(channel=0, base_row=1000)
        assert offset.total_bytes < full.total_bytes
