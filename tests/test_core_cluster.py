"""Tests for the multi-node cluster layer."""

import pytest

from repro.core.cluster import NeuPimsCluster, RoutingPolicy
from repro.core.system import ParallelismScheme
from repro.model.spec import GPT3_7B
from repro.serving.trace import SHAREGPT, warmed_batch

from tests.conftest import make_request


def cluster(nodes=2, policy=RoutingPolicy.JOIN_SHORTEST_QUEUE):
    return NeuPimsCluster(GPT3_7B, num_nodes=nodes,
                          scheme=ParallelismScheme(1, 1), policy=policy)


class TestRouting:
    def test_round_robin_cycles_nodes(self):
        c = cluster(nodes=3, policy=RoutingPolicy.ROUND_ROBIN)
        indices = [c.route(make_request(i)) for i in range(6)]
        assert indices == [0, 1, 2, 0, 1, 2]

    def test_jsq_prefers_empty_node(self):
        c = cluster(nodes=2)
        c.route(make_request(0, input_len=2000))
        assert c.route(make_request(1, input_len=10)) == 1

    def test_jsq_balances_better_than_round_robin_on_skew(self):
        lengths = [4000, 3000, 2000, 1500, 100, 90, 80, 70]
        jsq = cluster(nodes=4)
        rr = cluster(nodes=4, policy=RoutingPolicy.ROUND_ROBIN)
        jsq.route_all([make_request(i, input_len=n)
                       for i, n in enumerate(lengths)])
        rr.route_all([make_request(i, input_len=n)
                      for i, n in enumerate(lengths)])
        assert jsq.load_imbalance() <= rr.load_imbalance()

    def test_route_all_covers_every_request(self):
        c = cluster(nodes=2)
        requests = [make_request(i) for i in range(5)]
        assignment = c.route_all(requests)
        assert set(assignment) == set(range(5))
        assert sum(len(n.requests) for n in c.nodes) == 5

    def test_invalid_node_count_raises(self):
        with pytest.raises(ValueError):
            NeuPimsCluster(GPT3_7B, num_nodes=0)


class TestClusterExecution:
    def test_device_count_aggregates(self):
        c = NeuPimsCluster(GPT3_7B, num_nodes=3,
                           scheme=ParallelismScheme(2, 2))
        assert c.num_devices == 12

    def test_iteration_latency_is_makespan(self):
        c = cluster(nodes=2)
        c.nodes[0].requests = warmed_batch(SHAREGPT, 32, seed=0)
        c.nodes[1].requests = warmed_batch(SHAREGPT, 8, seed=1)
        slow = c.nodes[0].system.iteration_latency(c.nodes[0].requests)
        assert c.iteration_latency() == pytest.approx(slow, rel=0.01)

    def test_empty_cluster_zero_latency(self):
        assert cluster().iteration_latency() == 0.0

    def test_throughput_scales_with_nodes(self):
        def run(nodes):
            c = cluster(nodes=nodes)
            batch = warmed_batch(SHAREGPT, 32 * nodes, seed=2)
            c.route_all(batch)
            return c.throughput_tokens_per_second()
        assert run(4) > 3 * run(1)

    def test_remove_finished(self):
        c = cluster(nodes=1)
        done = make_request(0, output_len=4, generated=0)
        done.generated = 4
        alive = make_request(1)
        c.nodes[0].requests = [done, alive]
        assert c.remove_finished() == 1
        assert [r.request_id for r in c.nodes[0].requests] == [1]

    def test_load_imbalance_even_when_empty(self):
        assert cluster().load_imbalance() == 1.0
