"""Tests for the KV-cache store (paging x address map x layout)."""

import pytest

from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.dram.timing import HbmOrganization
from repro.model.spec import GPT3_7B
from repro.pim.kvstore import ChannelKvStore, KvStoreError


@pytest.fixture
def store():
    return ChannelKvStore(GPT3_7B, channel=0)


class TestPlacement:
    def test_register_and_append(self, store):
        store.register(1)
        store.append_token(1)
        placement = store.placement(1)
        assert placement.tokens == store.pages_per_token
        assert placement.key_pages and placement.value_pages

    def test_pages_per_token(self, store):
        # 4096 fp16 elements = 8 KB = 8 pages of 1 KB.
        assert store.pages_per_token == 8

    def test_duplicate_register_raises(self, store):
        store.register(1)
        with pytest.raises(KvStoreError):
            store.register(1)

    def test_unknown_request_raises(self, store):
        with pytest.raises(KvStoreError):
            store.append_token(42)
        with pytest.raises(KvStoreError):
            store.placement(42)

    def test_context_handoff(self, store):
        store.register(1)
        store.append_context(1, tokens=64)
        assert len(store.placement(1).key_pages) == 64 * store.pages_per_token

    def test_invalid_context_raises(self, store):
        store.register(1)
        with pytest.raises(ValueError):
            store.append_context(1, tokens=0)

    def test_release_returns_pages_to_pool(self, store):
        store.register(1)
        store.append_context(1, tokens=16)
        used = store.used_pages
        assert used > 0
        freed = store.release(1)
        assert freed == used
        assert store.used_pages == 0

    def test_release_unknown_is_zero(self, store):
        assert store.release(7) == 0

    def test_freed_pages_are_reused(self, store):
        store.register(1)
        store.append_context(1, tokens=8)
        first_pages = set(store.placement(1).rows_touched())
        store.release(1)
        store.register(2)
        store.append_context(2, tokens=8)
        second_pages = set(store.placement(2).rows_touched())
        assert first_pages == second_pages

    def test_out_of_capacity_raises(self):
        org = HbmOrganization(capacity_per_channel=1 << 20)  # 1 MB channel
        store = ChannelKvStore(GPT3_7B, channel=0, org=org)
        store.register(1)
        with pytest.raises(KvStoreError):
            store.append_context(1, tokens=100)

    def test_reserved_rows_shrink_capacity(self):
        plain = ChannelKvStore(GPT3_7B, channel=0)
        reserved = ChannelKvStore(GPT3_7B, channel=0, reserved_rows=1000)
        assert reserved.free_pages < plain.free_pages

    def test_full_reservation_raises(self):
        org = HbmOrganization()
        with pytest.raises(ValueError):
            ChannelKvStore(GPT3_7B, channel=0, org=org,
                           reserved_rows=org.rows_per_bank())


class TestLayoutConsistency:
    def test_keys_spread_across_all_banks(self, store):
        """§6.3: the key pages of a long context engage every bank."""
        store.register(1)
        store.append_context(1, tokens=64)
        assert store.placement(1).banks_touched() == set(range(32))

    def test_wave_count_matches_estimator_tiles(self):
        """The store's activation waves equal Algorithm 1's logit tile
        count — the layout and the latency model agree."""
        org = HbmOrganization()
        store = ChannelKvStore(GPT3_7B, channel=0, org=org)
        estimator = MhaLatencyEstimator(GPT3_7B, org, analytic_latencies())
        seq_len = 96
        store.register(1)
        store.append_context(1, tokens=seq_len)
        waves = store.wave_count_logit(1)
        # Algorithm 1 (fractional): (seq/B_chnl) * (E/P_DRAM) tiles.
        expected = (seq_len / org.banks_per_channel) * (4096 / 512)
        assert waves == pytest.approx(expected, rel=0.1)
        del estimator  # estimator formula shown inline above

    def test_wave_rows_one_per_bank(self, store):
        store.register(1)
        store.append_context(1, tokens=40)
        for wave in store.logit_wave_rows(1):
            banks = [bank for bank, _ in wave]
            assert len(banks) == len(set(banks))
