"""Cross-process determinism of sharded sweeps and the perf caches.

The execution subsystem's contract is that parallel output is
record-for-record identical to serial output.  That has to hold across
worker start methods (``fork`` workers inherit the parent's warm caches,
``spawn`` workers rebuild everything from imports) and across
``PYTHONHASHSEED`` values (no cache key or record ordering may lean on
``hash()`` of anything but values with stable hashes).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.analysis.ablation import ablation_axes, run_ablation_grid
from repro.analysis.sensitivity import DEFAULT_KNOBS, sensitivity_sweep
from repro.core.planner import plan_deployment
from repro.exec import PerfCacheWarmup, ProcessPoolBackend
from repro.model.spec import GPT3_7B
from repro.serving.trace import ALPACA

SMALL_AXES_KW = dict(batch_sizes=(16,))  # 2*2*2 flag cross, one batch size

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Driver for the PYTHONHASHSEED tests: computes a serial and a 2-worker
#: sweep over the small ablation grid plus a calibration digest, and
#: prints everything as sorted JSON for byte comparison across runs.
_HASHSEED_SCRIPT = """
import json, sys
from repro.analysis.ablation import ablation_axes, run_ablation_grid
from repro.core.estimator import analytic_latencies
from repro.exec import ProcessPoolBackend
from repro.perf.calibration import cached_calibrate

axes = ablation_axes(batch_sizes=(16,))
serial = run_ablation_grid(axes, num_batches=1)
pooled = run_ablation_grid(
    axes, num_batches=1,
    parallel=ProcessPoolBackend(2, start_method="fork"))
calibration = cached_calibrate()
payload = {
    "serial": serial.records,
    "pooled": pooled.records,
    "calibration": repr(calibration),
    "analytic": repr(analytic_latencies()),
}
json.dump(payload, sys.stdout, sort_keys=True)
"""


def _run_with_hashseed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    result = subprocess.run(
        [sys.executable, "-c", _HASHSEED_SCRIPT],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestStartMethods:
    def test_fork_matches_serial(self):
        axes = ablation_axes(**SMALL_AXES_KW)
        serial = run_ablation_grid(axes, num_batches=1)
        pooled = run_ablation_grid(
            axes, num_batches=1,
            parallel=ProcessPoolBackend(2, start_method="fork"))
        assert pooled.records == serial.records

    def test_spawn_matches_serial(self):
        # Spawn workers rebuild caches from a cold interpreter; the
        # warmup pre-fills calibration so results and timings come from
        # the same code path as the warm parent.
        axes = ablation_axes(**SMALL_AXES_KW)
        serial = run_ablation_grid(axes, num_batches=1)
        pooled = run_ablation_grid(
            axes, num_batches=1,
            parallel=ProcessPoolBackend(2, start_method="spawn",
                                        warmup=PerfCacheWarmup()))
        assert pooled.records == serial.records

    def test_chunked_fork_matches_serial(self):
        axes = ablation_axes(**SMALL_AXES_KW)
        serial = run_ablation_grid(axes, num_batches=1)
        pooled = run_ablation_grid(
            axes, num_batches=1,
            parallel=ProcessPoolBackend(2, chunk_size=3,
                                        start_method="fork"))
        assert pooled.records == serial.records


class TestHashSeedInvariance:
    def test_records_and_cache_results_stable_across_hash_seeds(self):
        baseline = _run_with_hashseed("0")
        for seed in ("1", "31337"):
            assert _run_with_hashseed(seed) == baseline
        payload = json.loads(baseline)
        assert payload["pooled"] == payload["serial"]
        assert len(payload["serial"]) == 8


class TestAnalysisFrontEnds:
    def test_sensitivity_sweep_parallel_matches_serial(self):
        kwargs = dict(batch_size=64, layers=2, knobs=DEFAULT_KNOBS[:1])
        serial = sensitivity_sweep(**kwargs)
        pooled = sensitivity_sweep(parallel=2, **kwargs)
        assert pooled == serial

    def test_planner_parallel_matches_serial(self):
        kwargs = dict(spec=GPT3_7B, trace=ALPACA, max_devices=4,
                      batch_sizes=[32, 64])
        serial = plan_deployment(**kwargs)
        pooled = plan_deployment(parallel=2, **kwargs)
        assert pooled.points == serial.points
        assert pooled.best == serial.best
