"""Property-based timing invariants of the command-level simulation.

Hypothesis drives random command sequences through the channel model and
checks the DRAM protocol invariants hold regardless of order: activates
respect tFAW, column accesses respect tRCD/tCCD, busy intervals on the
C/A bus never overlap, and controller drains always terminate with
non-decreasing bus slots.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType, ca_bus_cycles
from repro.dram.controller import ControllerConfig, MemoryController


def random_mem_program(bank_rows):
    """Build a legal per-bank ACT/RD.../PRE program from draw data."""
    commands = []
    for bank, (row, read_count) in enumerate(bank_rows):
        commands.append(Command(CommandType.ACT, bank=bank, row=row))
        for _ in range(read_count):
            commands.append(Command(CommandType.RD, bank=bank))
        commands.append(Command(CommandType.PRE, bank=bank))
    return commands


bank_programs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1000),
              st.integers(min_value=1, max_value=6)),
    min_size=1, max_size=8)


class TestChannelInvariants:
    @given(programs=bank_programs)
    @settings(max_examples=40, deadline=None)
    def test_tfaw_never_violated(self, programs):
        channel = Channel(0)
        for cmd in random_mem_program(programs):
            channel.issue(cmd)
        acts = sorted(r.issue_time for r in channel.issued
                      if r.command.ctype is CommandType.ACT)
        for i in range(len(acts) - 4):
            window = acts[i + 4] - acts[i]
            assert window >= channel.timing.tFAW - 1e-9

    @given(programs=bank_programs)
    @settings(max_examples=40, deadline=None)
    def test_trcd_between_act_and_read(self, programs):
        channel = Channel(0)
        for cmd in random_mem_program(programs):
            channel.issue(cmd)
        last_act = {}
        for record in channel.issued:
            if record.command.ctype is CommandType.ACT:
                last_act[record.command.bank] = record.issue_time
            elif record.command.ctype is CommandType.RD:
                act = last_act[record.command.bank]
                assert record.issue_time >= act + channel.timing.tRCD - 1e-9

    @given(programs=bank_programs)
    @settings(max_examples=40, deadline=None)
    def test_ca_bus_slots_never_overlap(self, programs):
        channel = Channel(0)
        for cmd in random_mem_program(programs):
            channel.issue(cmd)
        slots = sorted(
            (r.issue_time, r.issue_time + ca_bus_cycles(r.command.ctype))
            for r in channel.issued)
        for (s1, e1), (s2, e2) in zip(slots, slots[1:]):
            assert e1 <= s2 + 1e-9

    @given(programs=bank_programs,
           k=st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_controller_drain_terminates_and_is_ordered(self, programs, k):
        controller = MemoryController(Channel(0), ControllerConfig())
        controller.enqueue_pim([
            Command(CommandType.PIM_HEADER, k=k),
            Command(CommandType.PIM_GWRITE, bank=0, row=5000),
            Command(CommandType.PIM_GEMV, k=k),
            Command(CommandType.PIM_PRECHARGE),
        ])
        controller.enqueue_mem(random_mem_program(programs))
        records = controller.drain()
        assert records
        starts = [r.issue_time for r in records]
        assert starts == sorted(starts)
        assert controller.finish_time >= max(starts)

    @given(programs=bank_programs)
    @settings(max_examples=30, deadline=None)
    def test_completion_never_before_issue(self, programs):
        channel = Channel(0)
        for cmd in random_mem_program(programs):
            channel.issue(cmd)
        for record in channel.issued:
            assert record.complete_time >= record.issue_time
            assert record.bus_release >= record.issue_time
