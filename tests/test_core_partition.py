"""Unit tests for sub-batch partitioning (Algorithm 3)."""

import pytest

from repro.core.partition import (
    group_by_channel,
    partition_batch,
    partition_stats,
    partition_sub_batches,
)

from tests.conftest import make_request


class TestGroupByChannel:
    def test_buckets_by_channel(self):
        requests = [make_request(0, channel=1), make_request(1, channel=0),
                    make_request(2, channel=1)]
        buckets = group_by_channel(requests, 2)
        assert [r.request_id for r in buckets[0]] == [1]
        assert [r.request_id for r in buckets[1]] == [0, 2]

    def test_unassigned_goes_to_channel_zero(self):
        buckets = group_by_channel([make_request(0)], 2)
        assert len(buckets[0]) == 1

    def test_invalid_channel_raises(self):
        with pytest.raises(ValueError):
            group_by_channel([make_request(0, channel=9)], 2)


class TestAlgorithm3:
    def test_even_channels_split_in_half(self):
        channels = [[make_request(i + c * 10, channel=c) for i in range(4)]
                    for c in range(3)]
        sb1, sb2 = partition_sub_batches(channels)
        assert len(sb1) == len(sb2) == 6

    def test_odd_remainders_alternate(self):
        """Algorithm 3's turn flip: odd channels alternate which sub-batch
        receives the extra request, keeping totals balanced."""
        channels = [[make_request(c * 10 + i, channel=c) for i in range(3)]
                    for c in range(4)]
        sb1, sb2 = partition_sub_batches(channels)
        # 4 channels x 3 requests: alternating ceil/floor gives 6/6.
        assert len(sb1) == len(sb2) == 6

    def test_single_odd_channel(self):
        channels = [[make_request(i, channel=0) for i in range(5)]]
        sb1, sb2 = partition_sub_batches(channels)
        # First odd channel: turn=True -> ceil -> 3/2.
        assert len(sb1) == 3
        assert len(sb2) == 2

    def test_per_channel_halves_stay_on_channel(self):
        channels = [[make_request(i, channel=0) for i in range(4)],
                    [make_request(10 + i, channel=1) for i in range(4)]]
        sb1, sb2 = partition_sub_batches(channels)
        for sub_batch in (sb1, sb2):
            per_channel = {}
            for r in sub_batch:
                per_channel[r.channel] = per_channel.get(r.channel, 0) + 1
            assert per_channel == {0: 2, 1: 2}

    def test_sub_batch_field_written(self):
        channels = [[make_request(i, channel=0) for i in range(4)]]
        sb1, sb2 = partition_sub_batches(channels)
        assert all(r.sub_batch == 0 for r in sb1)
        assert all(r.sub_batch == 1 for r in sb2)

    def test_all_requests_partitioned_exactly_once(self):
        channels = [[make_request(c * 100 + i, channel=c)
                     for i in range(7)] for c in range(5)]
        sb1, sb2 = partition_sub_batches(channels)
        all_ids = sorted(r.request_id for r in sb1 + sb2)
        expected = sorted(c * 100 + i for c in range(5) for i in range(7))
        assert all_ids == expected

    def test_empty_channels_ok(self):
        sb1, sb2 = partition_sub_batches([[], []])
        assert sb1 == [] and sb2 == []


class TestPartitionBatch:
    def test_partition_batch_composes(self):
        requests = [make_request(i, channel=i % 4) for i in range(16)]
        sb1, sb2 = partition_batch(requests, 4)
        assert len(sb1) == len(sb2) == 8

    def test_partition_stats(self):
        requests = [make_request(i, input_len=100, channel=0)
                    for i in range(4)]
        sb1, sb2 = partition_batch(requests, 1)
        stats = partition_stats(sb1, sb2)
        assert stats["size_skew"] == 0
        assert stats["token_skew"] == pytest.approx(0.0)

    def test_size_skew_bounded_by_one_per_odd_channel_pair(self):
        """The turn flip bounds total size skew to at most 1."""
        requests = [make_request(c * 10 + i, channel=c)
                    for c in range(6) for i in range(3)]
        sb1, sb2 = partition_batch(requests, 6)
        assert abs(len(sb1) - len(sb2)) <= 1
