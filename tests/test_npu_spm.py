"""Tests for the scratchpad memory model."""

import pytest

from repro.model.layers import GemmShape
from repro.model.spec import GPT3_7B, GPT3_175B
from repro.npu.spm import (
    Scratchpad,
    SpmCapacityError,
    SpmConfig,
    layer_weights_fit,
    max_streaming_batch,
    tile_pipeline_fits,
    tile_working_set_bytes,
)
from repro.npu.systolic import SystolicConfig


class TestScratchpad:
    def test_allocate_and_release(self):
        spm = Scratchpad(SpmConfig(capacity_bytes=1000))
        spm.allocate("weights", 600)
        assert spm.free_bytes == 400
        assert spm.release("weights") == 600
        assert spm.free_bytes == 1000

    def test_over_allocation_raises(self):
        spm = Scratchpad(SpmConfig(capacity_bytes=100))
        with pytest.raises(SpmCapacityError):
            spm.allocate("big", 200)

    def test_duplicate_region_raises(self):
        spm = Scratchpad(SpmConfig(capacity_bytes=100))
        spm.allocate("a", 10)
        with pytest.raises(ValueError):
            spm.allocate("a", 10)

    def test_release_unknown_returns_zero(self):
        assert Scratchpad().release("ghost") == 0

    def test_fits_query(self):
        spm = Scratchpad(SpmConfig(capacity_bytes=100))
        assert spm.fits(100)
        assert not spm.fits(101)

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            SpmConfig(capacity_bytes=0)


class TestWorkingSets:
    def test_tile_working_set_scales_with_m(self):
        systolic = SystolicConfig()
        small = tile_working_set_bytes(GemmShape(16, 4096, 4096), systolic)
        large = tile_working_set_bytes(GemmShape(512, 4096, 4096), systolic)
        assert large > small

    def test_double_buffering_roughly_doubles_inputs(self):
        systolic = SystolicConfig()
        gemm = GemmShape(128, 4096, 4096)
        single = tile_working_set_bytes(gemm, systolic,
                                        double_buffered=False)
        double = tile_working_set_bytes(gemm, systolic, double_buffered=True)
        assert single < double < 2 * single

    def test_tile_pipeline_fits_for_evaluated_batches(self):
        """Batches up to 512 keep the tile pipeline inside a 32 MiB SPM —
        the premise of the double-buffered systolic timing model."""
        for m in (64, 256, 512):
            assert tile_pipeline_fits(GemmShape(m, 12288, 12288))

    def test_layer_weights_never_fit(self):
        """No evaluated model keeps a block's weights resident, so
        sub-batch interleaving must re-stream them (DESIGN.md §2)."""
        for spec, tp in ((GPT3_7B, 1), (GPT3_7B, 4), (GPT3_175B, 8)):
            assert not layer_weights_fit(spec, tp=tp)

    def test_max_streaming_batch_consistent_with_fits(self):
        m_max = max_streaming_batch()
        assert tile_pipeline_fits(GemmShape(max(1, m_max), 128, 128))
        assert not tile_pipeline_fits(
            GemmShape(m_max + 1024, 128, 128))
