"""The cluster tier: fleet specs, routing policies, failover, results.

Unit tests pin the policy strategies and the FleetSpec/FleetResult
round-trips; the integration tests pin the tentpole invariants — a
1-node fleet is bit-identical to a plain Session, node kills conserve
every request through failover, runs are deterministic per (spec,
fault seed), group-commit chunking never changes the payload, and
parallel fleet sweeps merge identically to serial ones.
"""

import json

import pytest

from repro.api import ScenarioSpec, ServingSpec, Session, TrafficSpec
from repro.cluster import (FleetHealthSpec, FleetResult, FleetSpec,
                           LeastLoadedPolicy, PowerOfTwoPolicy,
                           RoundRobinPolicy, Router, RoutingPolicy,
                           SessionAffinityPolicy, run_fleet, run_fleets)
from repro.faults.chaos import fleet_chaos_spec

FAST_NODE = ScenarioSpec(
    model="gpt3-7b", system="neupims", layers_resident=2,
    fidelity="analytic",
    serving=ServingSpec(max_batch_size=8, deadline_cycles=6e7,
                        max_retries=1, retry_backoff_cycles=2e5))


def small_fleet(**updates):
    """A fast 2-node fleet with a short Poisson stream."""
    defaults = dict(
        nodes=(FAST_NODE, FAST_NODE),
        traffic=TrafficSpec.poisson(rate_per_kcycle=0.02,
                                    horizon_cycles=1e6, seed=7,
                                    max_requests=8))
    defaults.update(updates)
    return FleetSpec(**defaults)


class TestFleetSpec:
    def test_requires_nodes(self):
        with pytest.raises(ValueError, match="at least one node"):
            FleetSpec(nodes=())

    def test_rejects_non_scenario_nodes(self):
        with pytest.raises(TypeError, match="ScenarioSpec"):
            FleetSpec(nodes=({"model": "gpt3-7b"},))

    def test_rejects_external_traffic(self):
        with pytest.raises(ValueError, match="poisson or replay"):
            small_fleet(traffic=TrafficSpec(kind="external"))

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown router policy"):
            small_fleet(policy="teleport")

    def test_rejects_bad_watermark_and_window(self):
        with pytest.raises(ValueError, match="shed_watermark"):
            small_fleet(shed_watermark=0)
        with pytest.raises(ValueError, match="pressure_window"):
            small_fleet(pressure_window_cycles=0.0)

    def test_health_knob_validation(self):
        with pytest.raises(ValueError):
            FleetHealthSpec(probe_interval_cycles=0.0)
        with pytest.raises(ValueError):
            FleetHealthSpec(fail_threshold=0)
        with pytest.raises(ValueError):
            FleetHealthSpec(cooldown_cycles=-1.0)

    def test_homogeneous_builder(self):
        fleet = FleetSpec.homogeneous(FAST_NODE, 4, policy="least-loaded")
        assert fleet.num_nodes == 4
        assert all(node == FAST_NODE for node in fleet.nodes)
        assert fleet.policy == "least-loaded"
        with pytest.raises(ValueError, match="count"):
            FleetSpec.homogeneous(FAST_NODE, 0)

    def test_dict_round_trip_through_json(self):
        fleet = small_fleet(policy="p2c",
                            policy_options={"seed": 3},
                            fault_seed=5,
                            fault_options={"horizon": 2e7, "downs": 1},
                            shed_watermark=4, label="rt")
        payload = json.loads(json.dumps(fleet.to_dict()))
        clone = FleetSpec.from_dict(payload)
        assert clone == fleet
        assert clone.to_dict() == fleet.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        data = small_fleet().to_dict()
        data["replicas"] = 3
        with pytest.raises(ValueError, match="replicas"):
            FleetSpec.from_dict(data)


class TestRoutingPolicies:
    def test_base_validates_fleet_size(self):
        with pytest.raises(ValueError, match="num_nodes"):
            RoutingPolicy(0)

    def test_round_robin_cycles_and_skips_down_nodes(self):
        policy = RoundRobinPolicy(4)
        all_up = [0, 1, 2, 3]
        load = [0.0] * 4
        assert [policy.choose(i, all_up, load) for i in range(5)] == \
            [0, 1, 2, 3, 0]
        # Node 2 goes down: the rotation continues from the cursor,
        # skipping it, and 2 re-enters in place once healthy again.
        degraded = [0, 1, 3]
        assert [policy.choose(i, degraded, load) for i in range(3)] == \
            [1, 3, 0]
        assert policy.choose(9, all_up, load) == 1

    def test_least_loaded_min_with_index_tiebreak(self):
        policy = LeastLoadedPolicy(3)
        assert policy.choose(0, [0, 1, 2], [2.0, 1.0, 3.0]) == 1
        assert policy.choose(0, [0, 1, 2], [1.0, 1.0, 1.0]) == 0
        # Load entries of unhealthy nodes are ignored even when lowest.
        assert policy.choose(0, [1, 2], [0.0, 5.0, 4.0]) == 2

    def test_affinity_pins_home_and_spills_forward(self):
        policy = SessionAffinityPolicy(4)
        load = [0.0] * 4
        assert policy.choose(5, [0, 1, 2, 3], load) == 1
        assert policy.choose(5, [0, 2, 3], load) == 2   # home 1 down
        assert policy.choose(3, [0, 1], load) == 0      # wraps past 3

    def test_power_of_two_is_seed_deterministic(self):
        healthy = [0, 1, 2, 3]
        load = [4.0, 1.0, 3.0, 2.0]
        a = PowerOfTwoPolicy(4, seed=9)
        b = PowerOfTwoPolicy(4, seed=9)
        seq_a = [a.choose(i, healthy, load) for i in range(20)]
        seq_b = [b.choose(i, healthy, load) for i in range(20)]
        assert seq_a == seq_b
        assert set(seq_a) <= set(healthy)
        # A single healthy node needs no sampling at all.
        assert PowerOfTwoPolicy(4, seed=9).choose(0, [2], load) == 2


class TestSingleNodeEquivalence:
    def test_one_node_fleet_matches_plain_session_bit_identically(self):
        fleet = small_fleet(nodes=(FAST_NODE,))
        fleet_result = run_fleet(fleet)
        plain = Session(FAST_NODE.override(traffic=fleet.traffic)).run()
        assert fleet_result.nodes[0].to_dict() == plain.to_dict()
        assert fleet_result.ledger["requests"] == len(plain.requests)
        assert fleet_result.ledger["failed_over"] == 0
        assert fleet_result.conserved()


class TestFailover:
    def test_node_kill_conserves_every_request(self):
        result = run_fleet(fleet_chaos_spec(0))
        assert result.conserved()
        assert result.ledger["failed_over"] > 0
        assert {s["status"] for s in result.statuses} <= \
            {"completed", "timed_out", "shed", "aborted"}
        events = {entry["event"] for entry in result.node_log}
        assert "down" in events, \
            "the seeded NodeDown never tripped the health model"
        assert "failover" in events

    def test_deterministic_per_spec_and_seed(self):
        fleet = fleet_chaos_spec(1)
        assert run_fleet(fleet).to_dict() == run_fleet(fleet).to_dict()

    def test_group_step_chunking_never_changes_payload(self):
        fleet = small_fleet(fault_seed=1,
                            fault_options={"horizon": 2e7, "downs": 1})
        batch = Router(fleet)
        batch.materialize()
        stepped = Router(fleet)
        stepped.max_group_steps = 1
        stepped.materialize()
        assert batch.run().to_dict() == stepped.run().to_dict()


class TestFleetResult:
    def test_round_trip_through_json(self):
        result = run_fleet(small_fleet())
        payload = json.loads(json.dumps(result.to_dict()))
        clone = FleetResult.from_dict(payload)
        assert clone.to_dict() == result.to_dict()
        assert clone.conserved() == result.conserved()
        assert clone.num_nodes == result.num_nodes

    def test_summary_rows_render(self):
        rows = run_fleet(small_fleet()).summary_rows()
        metrics = [name for name, _ in rows]
        for expected in ("policy", "nodes", "requests", "completed",
                         "failed over"):
            assert expected in metrics


class TestRunFleets:
    def test_parallel_merge_identical_to_serial(self):
        fleets = [small_fleet(),
                  small_fleet(policy="least-loaded")]
        serial = run_fleets(fleets)
        pooled = run_fleets(fleets, parallel=2)
        assert [r.to_dict() for r in serial] == \
            [r.to_dict() for r in pooled]

    def test_accepts_spec_dicts(self):
        fleet = small_fleet()
        assert run_fleet(fleet.to_dict()).to_dict() == \
            run_fleet(fleet).to_dict()
