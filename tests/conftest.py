"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import NeuPimsConfig
from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.dram.timing import HbmOrganization, PimTiming, TimingParams
from repro.model.spec import GPT3_7B, GPT3_13B, GPT3_30B
from repro.serving.request import InferenceRequest, RequestStatus
from repro.serving.trace import SHAREGPT, warmed_batch


@pytest.fixture
def timing() -> TimingParams:
    return TimingParams()


@pytest.fixture
def org() -> HbmOrganization:
    return HbmOrganization()


@pytest.fixture
def pim_timing() -> PimTiming:
    return PimTiming()


@pytest.fixture
def config() -> NeuPimsConfig:
    return NeuPimsConfig()


@pytest.fixture
def small_org() -> HbmOrganization:
    """A small organization for fast command-level tests."""
    return HbmOrganization(channels=1, banks_per_channel=8, banks_per_group=4,
                           capacity_per_channel=1 << 24)


@pytest.fixture
def estimator() -> MhaLatencyEstimator:
    return MhaLatencyEstimator(spec=GPT3_7B, org=HbmOrganization(),
                               latencies=analytic_latencies())


@pytest.fixture
def spec_7b():
    return GPT3_7B


@pytest.fixture
def spec_13b():
    return GPT3_13B


@pytest.fixture
def spec_30b():
    return GPT3_30B


def make_request(request_id: int = 0, input_len: int = 64,
                 output_len: int = 128, generated: int = 0,
                 channel=None) -> InferenceRequest:
    """Factory for running-state requests used across tests."""
    request = InferenceRequest(
        request_id=request_id,
        input_len=input_len,
        output_len=output_len,
        generated=generated,
        status=RequestStatus.RUNNING,
        channel=channel,
    )
    return request


@pytest.fixture
def sharegpt_batch():
    return warmed_batch(SHAREGPT, batch_size=32, seed=7)
