"""Tests for the specification front-end."""

import json

import pytest

from repro.compiler.frontend import (
    CompilationInput,
    SpecificationError,
    dump_specification,
    load_specification,
    parse_model_spec,
    parse_system_spec,
)
from repro.model.spec import GPT3_13B


class TestModelSpecParsing:
    def test_preset_lookup(self):
        assert parse_model_spec({"preset": "GPT3-13B"}) is GPT3_13B

    def test_unknown_preset_raises(self):
        with pytest.raises(SpecificationError, match="unknown preset"):
            parse_model_spec({"preset": "gpt5"})

    def test_explicit_architecture(self):
        spec = parse_model_spec({
            "name": "tiny", "num_layers": 4, "num_heads": 8, "d_model": 512,
        })
        assert spec.head_dim == 64
        assert spec.ffn_mult == 4

    def test_missing_fields_raise(self):
        with pytest.raises(SpecificationError, match="missing fields"):
            parse_model_spec({"name": "x", "num_layers": 4})

    def test_invalid_architecture_raises(self):
        with pytest.raises(SpecificationError):
            parse_model_spec({"name": "bad", "num_layers": 4,
                              "num_heads": 3, "d_model": 100})


class TestSystemSpecParsing:
    def test_defaults(self):
        config, scheme = parse_system_spec({})
        assert config.dual_row_buffer
        assert scheme.tp == scheme.pp == 1

    def test_feature_flags(self):
        config, _ = parse_system_spec(
            {"features": {"sub_batch_interleaving": False}})
        assert not config.sub_batch_interleaving
        assert config.dual_row_buffer  # untouched flags keep defaults

    def test_unknown_flag_raises(self):
        with pytest.raises(SpecificationError, match="unknown feature"):
            parse_system_spec({"features": {"turbo": True}})

    def test_hardware_overrides(self):
        config, _ = parse_system_spec({"hbm": {"channels": 16}})
        assert config.org.channels == 16

    def test_bad_hardware_section_raises(self):
        with pytest.raises(SpecificationError):
            parse_system_spec({"hbm": {"warp_drives": 2}})
        with pytest.raises(SpecificationError):
            parse_system_spec({"timing": {"tRP": 0}})

    def test_parallelism(self):
        _, scheme = parse_system_spec({"parallelism": {"tp": 4, "pp": 2}})
        assert (scheme.tp, scheme.pp) == (4, 2)


class TestLoadSpecification:
    def _document(self, tp=4):
        return json.dumps({
            "model": {"preset": "gpt3-13b"},
            "system": {"parallelism": {"tp": tp, "pp": 1}},
        })

    def test_load_valid_document(self):
        compilation = load_specification(self._document())
        assert compilation.model is GPT3_13B
        assert compilation.scheme.tp == 4

    def test_invalid_json_raises(self):
        with pytest.raises(SpecificationError, match="invalid JSON"):
            load_specification("{nope")

    def test_missing_model_section_raises(self):
        with pytest.raises(SpecificationError, match="model"):
            load_specification("{}")

    def test_cross_validation_tp_divisibility(self):
        with pytest.raises(SpecificationError, match="divisible"):
            load_specification(self._document(tp=7))

    def test_pp_exceeding_layers_raises(self):
        document = json.dumps({
            "model": {"name": "tiny", "num_layers": 2, "num_heads": 4,
                      "d_model": 256},
            "system": {"parallelism": {"tp": 1, "pp": 8}},
        })
        with pytest.raises(SpecificationError, match="PP"):
            load_specification(document)

    def test_roundtrip(self):
        compilation = load_specification(self._document())
        dumped = dump_specification(compilation)
        reloaded = load_specification(dumped)
        assert reloaded.model.name.startswith("gpt3-13b")
        assert reloaded.scheme == compilation.scheme
        assert reloaded.config.dual_row_buffer == \
            compilation.config.dual_row_buffer

    def test_compilation_input_validate_direct(self):
        from repro.core.system import ParallelismScheme
        from repro.core.config import NeuPimsConfig
        compilation = CompilationInput(GPT3_13B, NeuPimsConfig(),
                                       ParallelismScheme(7, 1))
        with pytest.raises(SpecificationError):
            compilation.validate()
