"""Tests for the latency accounting layer."""

import pytest

from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B
from repro.serving.latency import (
    LatencyReport,
    LatencyTracker,
    RequestLatency,
    iteration_latency_histogram,
    percentile,
    queueing_delay_curve,
)
from repro.serving.pool import RequestPool
from repro.serving.request import InferenceRequest
from repro.serving.scheduler import IterationScheduler


def latency(rid=0, arrival=0.0, first=10.0, done=100.0, tokens=10):
    return RequestLatency(rid, arrival, first, done, tokens)


class TestRequestLatency:
    def test_ttft(self):
        assert latency(arrival=5.0, first=25.0).ttft == 20.0

    def test_end_to_end(self):
        assert latency(arrival=5.0, done=105.0).end_to_end == 100.0

    def test_tpot_excludes_first_token(self):
        lat = latency(first=10.0, done=100.0, tokens=10)
        assert lat.tpot == pytest.approx(10.0)

    def test_tpot_single_token_zero(self):
        assert latency(tokens=1).tpot == 0.0

    def test_out_of_order_timestamps_raise(self):
        with pytest.raises(ValueError):
            latency(arrival=50.0, first=10.0)

    def test_nonpositive_tokens_raise(self):
        with pytest.raises(ValueError):
            latency(tokens=0)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_p99_near_max(self):
        values = list(range(100))
        assert percentile(values, 99) == 98

    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestLatencyReport:
    def test_summary_scales_to_ms(self):
        report = LatencyReport()
        report.add(latency(first=1e6, done=2e6, tokens=11))
        summary = report.summary()
        assert summary["ttft_mean_ms"] == pytest.approx(1.0)
        assert summary["tpot_mean_ms"] == pytest.approx(0.1)

    def test_empty_summary(self):
        assert LatencyReport().summary() == {}

    def test_slo_attainment(self):
        report = LatencyReport()
        report.add(latency(rid=0, first=10.0))
        report.add(latency(rid=1, first=1000.0, done=2000.0))
        assert report.slo_attainment(ttft_cycles=100.0) == 0.5

    def test_slo_attainment_no_targets(self):
        report = LatencyReport()
        report.add(latency())
        assert report.slo_attainment() == 1.0


class TestLatencyTracker:
    def test_tracks_scheduler_run(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        requests = [InferenceRequest(i, input_len=16, output_len=3)
                    for i in range(4)]
        pool.submit_all(requests)
        tracker = LatencyTracker()
        scheduler = IterationScheduler(
            pool, tracker.wrap(device.executor()), max_batch_size=8,
            assign_channels=device.assign_channels)
        stats = scheduler.run()
        report = tracker.report()
        assert len(report.requests) == 4
        for lat in report.requests:
            assert lat.ttft > 0
            assert lat.completion_time == pytest.approx(stats.total_time)

    def test_late_arrival_has_longer_ttft(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        early = InferenceRequest(0, input_len=16, output_len=6)
        late = InferenceRequest(1, input_len=16, output_len=2,
                                arrival_time=1.0)
        pool.submit_all([early, late])
        tracker = LatencyTracker()
        scheduler = IterationScheduler(
            pool, tracker.wrap(device.executor()), max_batch_size=8,
            assign_channels=device.assign_channels)
        scheduler.run()
        report = tracker.report()
        by_id = {r.request_id: r for r in report.requests}
        assert by_id[1].first_token_time >= by_id[0].first_token_time

    def test_idle_gap_keeps_first_token_after_arrival(self):
        # Regression: when the pool drains and the scheduler idles
        # forward to a late arrival, the tracker clock must jump with it
        # — otherwise the late request's first token is stamped before
        # its arrival and report() rejects the reconstruction.
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        early = InferenceRequest(0, input_len=16, output_len=2)
        late = InferenceRequest(1, input_len=16, output_len=2,
                                arrival_time=1e9)
        pool.submit_all([early, late])
        tracker = LatencyTracker()
        scheduler = IterationScheduler(
            pool, tracker.wrap(device.executor()), max_batch_size=8,
            assign_channels=device.assign_channels,
            latency_tracker=tracker)
        scheduler.run()
        report = tracker.report()  # must not raise
        by_id = {r.request_id: r for r in report.requests}
        assert by_id[1].first_token_time > 1e9
        assert by_id[1].ttft >= 0


class TestStatsHelpers:
    def _stats(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        pool.submit_all(InferenceRequest(i, input_len=16, output_len=4)
                        for i in range(8))
        scheduler = IterationScheduler(
            pool, device.executor(), max_batch_size=8,
            assign_channels=device.assign_channels)
        return scheduler.run()

    def test_queueing_delay_curve(self):
        stats = self._stats()
        delays = queueing_delay_curve(stats, [0.0, stats.total_time + 1])
        assert delays[0] > 0          # waits for iteration 1 to end
        assert delays[1] == 0.0       # after the run: no boundary ahead

    def test_iteration_histogram_counts_all(self):
        stats = self._stats()
        histogram = iteration_latency_histogram(stats, bins=4)
        assert sum(histogram.values()) == len(stats.iterations)

    def test_histogram_empty_stats(self):
        from repro.serving.scheduler import ServingStats
        assert iteration_latency_histogram(ServingStats()) == {}


class TestSyncClockMonotonicity:
    """Regression: the tracker clock never runs backwards.

    Idle-forward jumps (scheduler skipping ahead to the next arrival)
    and retried requests (whose ``arrival_time`` is re-based into the
    future) are the two paths that historically could stamp first-token
    times before arrivals; :meth:`LatencyTracker.sync_clock` and the
    setdefault semantics of :meth:`observe_running` pin both.
    """

    def test_sync_clock_moves_forward_only(self):
        tracker = LatencyTracker()
        tracker.advance_clock(1000.0)
        tracker.sync_clock(500.0)  # behind: must not rewind
        assert tracker.clock == 1000.0
        tracker.sync_clock(5000.0)  # idle-forward jump
        assert tracker.clock == 5000.0

    def test_idle_forward_keeps_first_token_after_arrival(self):
        tracker = LatencyTracker()
        executor = tracker.wrap(lambda batch: 100.0)
        early = InferenceRequest(0, input_len=8, output_len=1,
                                 arrival_time=0.0)
        executor([early])
        # Late arrival: the scheduler idles forward before serving it.
        late = InferenceRequest(1, input_len=8, output_len=1,
                                arrival_time=9000.0)
        tracker.sync_clock(9000.0)
        executor([late])
        report = tracker.report()
        by_id = {r.request_id: r for r in report.requests}
        assert by_id[1].first_token_time == pytest.approx(9100.0)
        assert by_id[1].ttft == pytest.approx(100.0)
        for entry in report.requests:
            assert entry.arrival_time <= entry.first_token_time \
                <= entry.completion_time

    def test_retried_request_keeps_original_arrival(self):
        # A retry re-bases arrival_time into the future (backoff); the
        # tracker must keep the original arrival or the reconstructed
        # latency would have first_token < arrival and report() raises.
        tracker = LatencyTracker()
        executor = tracker.wrap(lambda batch: 100.0)
        request = InferenceRequest(0, input_len=8, output_len=4,
                                   arrival_time=0.0)
        executor([request])  # first token at clock 100
        request.arrival_time = 5000.0  # retry backoff re-base
        tracker.sync_clock(5000.0)
        executor([request])
        report = tracker.report()
        assert len(report.requests) == 1
        entry = report.requests[0]
        assert entry.arrival_time == 0.0
        assert entry.first_token_time == pytest.approx(100.0)
        assert entry.completion_time == pytest.approx(5100.0)

    def test_scheduler_idle_jumps_produce_valid_report(self):
        pool = RequestPool()
        pool.submit_all([
            InferenceRequest(0, input_len=8, output_len=2,
                             arrival_time=0.0),
            InferenceRequest(1, input_len=8, output_len=2,
                             arrival_time=1e6),
            InferenceRequest(2, input_len=8, output_len=2,
                             arrival_time=7e6),
        ])
        tracker = LatencyTracker()
        scheduler = IterationScheduler(pool, tracker.wrap(
            lambda batch: 1000.0), max_batch_size=4,
            latency_tracker=tracker)
        scheduler.run(max_iterations=100)
        report = tracker.report()  # raises if any timestamps disorder
        assert len(report.requests) == 3
        for entry in report.requests:
            assert entry.ttft >= 0.0
