"""Tests for the latency accounting layer."""

import pytest

from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B
from repro.serving.latency import (
    LatencyReport,
    LatencyTracker,
    RequestLatency,
    iteration_latency_histogram,
    percentile,
    queueing_delay_curve,
)
from repro.serving.pool import RequestPool
from repro.serving.request import InferenceRequest
from repro.serving.scheduler import IterationScheduler


def latency(rid=0, arrival=0.0, first=10.0, done=100.0, tokens=10):
    return RequestLatency(rid, arrival, first, done, tokens)


class TestRequestLatency:
    def test_ttft(self):
        assert latency(arrival=5.0, first=25.0).ttft == 20.0

    def test_end_to_end(self):
        assert latency(arrival=5.0, done=105.0).end_to_end == 100.0

    def test_tpot_excludes_first_token(self):
        lat = latency(first=10.0, done=100.0, tokens=10)
        assert lat.tpot == pytest.approx(10.0)

    def test_tpot_single_token_zero(self):
        assert latency(tokens=1).tpot == 0.0

    def test_out_of_order_timestamps_raise(self):
        with pytest.raises(ValueError):
            latency(arrival=50.0, first=10.0)

    def test_nonpositive_tokens_raise(self):
        with pytest.raises(ValueError):
            latency(tokens=0)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_p99_near_max(self):
        values = list(range(100))
        assert percentile(values, 99) == 98

    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestLatencyReport:
    def test_summary_scales_to_ms(self):
        report = LatencyReport()
        report.add(latency(first=1e6, done=2e6, tokens=11))
        summary = report.summary()
        assert summary["ttft_mean_ms"] == pytest.approx(1.0)
        assert summary["tpot_mean_ms"] == pytest.approx(0.1)

    def test_empty_summary(self):
        assert LatencyReport().summary() == {}

    def test_slo_attainment(self):
        report = LatencyReport()
        report.add(latency(rid=0, first=10.0))
        report.add(latency(rid=1, first=1000.0, done=2000.0))
        assert report.slo_attainment(ttft_cycles=100.0) == 0.5

    def test_slo_attainment_no_targets(self):
        report = LatencyReport()
        report.add(latency())
        assert report.slo_attainment() == 1.0


class TestLatencyTracker:
    def test_tracks_scheduler_run(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        requests = [InferenceRequest(i, input_len=16, output_len=3)
                    for i in range(4)]
        pool.submit_all(requests)
        tracker = LatencyTracker()
        scheduler = IterationScheduler(
            pool, tracker.wrap(device.executor()), max_batch_size=8,
            assign_channels=device.assign_channels)
        stats = scheduler.run()
        report = tracker.report()
        assert len(report.requests) == 4
        for lat in report.requests:
            assert lat.ttft > 0
            assert lat.completion_time == pytest.approx(stats.total_time)

    def test_late_arrival_has_longer_ttft(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        early = InferenceRequest(0, input_len=16, output_len=6)
        late = InferenceRequest(1, input_len=16, output_len=2,
                                arrival_time=1.0)
        pool.submit_all([early, late])
        tracker = LatencyTracker()
        scheduler = IterationScheduler(
            pool, tracker.wrap(device.executor()), max_batch_size=8,
            assign_channels=device.assign_channels)
        scheduler.run()
        report = tracker.report()
        by_id = {r.request_id: r for r in report.requests}
        assert by_id[1].first_token_time >= by_id[0].first_token_time

    def test_idle_gap_keeps_first_token_after_arrival(self):
        # Regression: when the pool drains and the scheduler idles
        # forward to a late arrival, the tracker clock must jump with it
        # — otherwise the late request's first token is stamped before
        # its arrival and report() rejects the reconstruction.
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        early = InferenceRequest(0, input_len=16, output_len=2)
        late = InferenceRequest(1, input_len=16, output_len=2,
                                arrival_time=1e9)
        pool.submit_all([early, late])
        tracker = LatencyTracker()
        scheduler = IterationScheduler(
            pool, tracker.wrap(device.executor()), max_batch_size=8,
            assign_channels=device.assign_channels,
            latency_tracker=tracker)
        scheduler.run()
        report = tracker.report()  # must not raise
        by_id = {r.request_id: r for r in report.requests}
        assert by_id[1].first_token_time > 1e9
        assert by_id[1].ttft >= 0


class TestStatsHelpers:
    def _stats(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        pool.submit_all(InferenceRequest(i, input_len=16, output_len=4)
                        for i in range(8))
        scheduler = IterationScheduler(
            pool, device.executor(), max_batch_size=8,
            assign_channels=device.assign_channels)
        return scheduler.run()

    def test_queueing_delay_curve(self):
        stats = self._stats()
        delays = queueing_delay_curve(stats, [0.0, stats.total_time + 1])
        assert delays[0] > 0          # waits for iteration 1 to end
        assert delays[1] == 0.0       # after the run: no boundary ahead

    def test_iteration_histogram_counts_all(self):
        stats = self._stats()
        histogram = iteration_latency_histogram(stats, bins=4)
        assert sum(histogram.values()) == len(stats.iterations)

    def test_histogram_empty_stats(self):
        from repro.serving.scheduler import ServingStats
        assert iteration_latency_histogram(ServingStats()) == {}
