"""Unit tests for the discrete-event engine and resources."""

import pytest

from repro.sim.engine import EventEngine, Resource, SimulationError


class TestEventEngine:
    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append("late"))
        engine.schedule_at(1.0, lambda: fired.append("early"))
        engine.run()
        assert fired == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(3.0, lambda: fired.append("first"))
        engine.schedule_at(3.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_now_advances_to_event_time(self):
        engine = EventEngine()
        engine.schedule_at(7.5, lambda: None)
        engine.run()
        assert engine.now == 7.5

    def test_schedule_after_uses_relative_delay(self):
        engine = EventEngine()
        times = []
        engine.schedule_at(4.0, lambda: engine.schedule_after(
            2.0, lambda: times.append(engine.now)))
        engine.run()
        assert times == [6.0]

    def test_scheduling_in_past_raises(self):
        engine = EventEngine()
        engine.schedule_at(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        engine = EventEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        engine = EventEngine()
        fired = []
        handle = engine.schedule_at(1.0, lambda: fired.append("x"))
        engine.cancel(handle)
        engine.run()
        assert fired == []

    def test_run_until_stops_before_later_events(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.schedule_at(10.0, lambda: fired.append("b"))
        engine.run(until=5.0)
        assert fired == ["a"]
        assert engine.now == 5.0
        assert engine.pending() == 1

    def test_step_returns_false_when_drained(self):
        engine = EventEngine()
        assert engine.step() is False

    def test_cancel_after_execution_keeps_pending_sound(self):
        """Cancelling a fired (or already-cancelled) event is a no-op and
        must not corrupt the O(1) pending counter."""
        engine = EventEngine()
        handle = engine.schedule_at(1.0, lambda: None)
        engine.run()
        engine.cancel(handle)
        engine.cancel(handle)
        assert engine.pending() == 0
        live = engine.schedule_at(2.0, lambda: None)
        assert engine.pending() == 1
        engine.cancel(live)
        engine.cancel(live)
        assert engine.pending() == 0

    def test_peek_time_skips_cancelled(self):
        engine = EventEngine()
        handle = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        engine.cancel(handle)
        assert engine.peek_time() == 2.0

    def test_events_can_schedule_new_events(self):
        engine = EventEngine()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                engine.schedule_after(1.0, lambda: chain(depth + 1))

        engine.schedule_at(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestResource:
    def test_first_booking_starts_at_earliest(self):
        res = Resource("r")
        start, end = res.acquire_for(10.0, earliest=5.0)
        assert (start, end) == (5.0, 15.0)

    def test_bookings_serialize(self):
        res = Resource("r")
        res.acquire_for(10.0)
        start, end = res.acquire_for(5.0)
        assert (start, end) == (10.0, 15.0)

    def test_earliest_after_free_time_creates_gap(self):
        res = Resource("r")
        res.acquire_for(2.0)
        start, _ = res.acquire_for(1.0, earliest=10.0)
        assert start == 10.0

    def test_busy_time_accumulates(self):
        res = Resource("r")
        res.acquire_for(3.0)
        res.acquire_for(4.0, earliest=20.0)
        assert res.busy_time == 7.0

    def test_utilization_over_horizon(self):
        res = Resource("r")
        res.acquire_for(25.0)
        assert res.utilization(100.0) == 0.25

    def test_utilization_clamps_to_one(self):
        res = Resource("r")
        res.acquire_for(50.0)
        assert res.utilization(10.0) == 1.0

    def test_zero_horizon_utilization_is_zero(self):
        assert Resource("r").utilization(0.0) == 0.0

    def test_negative_duration_raises(self):
        with pytest.raises(SimulationError):
            Resource("r").acquire_for(-1.0)

    def test_zero_duration_does_not_book_interval(self):
        res = Resource("r")
        res.acquire_for(0.0)
        assert res.intervals == []
        assert res.busy_time == 0.0

    def test_reset_clears_state(self):
        res = Resource("r")
        res.acquire_for(5.0)
        res.reset()
        assert res.free_at == 0.0
        assert res.busy_time == 0.0
        assert res.intervals == []
