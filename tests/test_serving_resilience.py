"""Deadlines, retries, shedding, aborts and fault windows in the scheduler.

Scheduler-level units drive :class:`IterationScheduler` with a constant
latency executor so every boundary decision is hand-checkable; the
session-level tests pin that an attached-but-idle resilience runtime is
latency-neutral and that the fault events surface through the bus.
"""

import pytest

from repro.api import ScenarioSpec, ServingSpec, Session, TrafficSpec
from repro.faults import (
    FaultInjector,
    FaultPlan,
    KvFault,
    RequestAbort,
    ResiliencePolicy,
    ResilienceRuntime,
    resilient_executor,
)
from repro.faults.plan import ChannelStall
from repro.model.spec import GPT3_7B
from repro.serving.events import (RequestRetired, RequestRetried,
                                  RequestShed, RequestTimedOut)
from repro.serving.paging import PagedKvAllocator, PagedKvConfig
from repro.serving.pool import RequestPool
from repro.serving.request import InferenceRequest
from repro.serving.scheduler import IterationScheduler

LATENCY = 1000.0

FAST = dict(model="gpt3-7b", fidelity="analytic", layers_resident=2)


def constant_executor(batch):
    """Unit-test executor: every iteration costs ``LATENCY`` cycles."""
    return LATENCY


def request(rid, output_len=10, arrival=0.0):
    return InferenceRequest(rid, input_len=8, output_len=output_len,
                            arrival_time=arrival)


def scheduler_with(requests, policy, injector=None, **kwargs):
    pool = RequestPool()
    pool.submit_all(requests)
    runtime = ResilienceRuntime(policy, injector=injector)
    scheduler = IterationScheduler(pool, constant_executor,
                                   max_batch_size=kwargs.pop("batch", 4),
                                   resilience=runtime, **kwargs)
    return scheduler, runtime


class TestDeadlinesAndRetries:
    def test_timeout_retries_then_terminates(self):
        policy = ResiliencePolicy(deadline_cycles=2500.0, max_retries=1,
                                  retry_backoff_cycles=500.0)
        scheduler, runtime = scheduler_with([request(0, output_len=50)],
                                            policy)
        scheduler.run(max_iterations=100)
        assert scheduler.outcomes == {0: "timed_out"}
        assert runtime.counters["timeouts"] == 2
        assert runtime.counters["retries"] == 1
        assert runtime.counters["timed_out"] == 1
        assert len(scheduler.pool) == 0

    def test_retry_rebases_deadline_and_applies_backoff(self):
        policy = ResiliencePolicy(deadline_cycles=2500.0, max_retries=1,
                                  retry_backoff_cycles=500.0)
        scheduler, runtime = scheduler_with([request(0, output_len=50)],
                                            policy)
        # Three iterations pass the deadline at the fourth boundary
        # (now = 3000 > 2500); the retry re-arrives at 3000 + 500 and is
        # re-admitted by the same iteration's idle-forward jump.
        for _ in range(4):
            scheduler.run_iteration()
        assert runtime.attempts[0] == 1
        assert runtime.deadline_base[0] == pytest.approx(3500.0)
        running = scheduler.pool.running()
        assert len(running) == 1
        assert running[0].arrival_time == pytest.approx(3500.0)
        assert scheduler.now == pytest.approx(4500.0)

    def test_completes_before_deadline_keeps_completed_status(self):
        policy = ResiliencePolicy(deadline_cycles=1e6, max_retries=1)
        scheduler, runtime = scheduler_with([request(0, output_len=5)],
                                            policy)
        scheduler.run(max_iterations=100)
        assert scheduler.outcomes == {0: "completed"}
        assert runtime.counters["timeouts"] == 0

    def test_zero_retries_times_out_terminally_at_once(self):
        policy = ResiliencePolicy(deadline_cycles=2500.0, max_retries=0)
        scheduler, runtime = scheduler_with([request(0, output_len=50)],
                                            policy)
        scheduler.run(max_iterations=100)
        assert scheduler.outcomes == {0: "timed_out"}
        assert runtime.counters["retries"] == 0

    def test_timeout_and_retry_events_emitted(self):
        from repro.sim.events import EventBus
        policy = ResiliencePolicy(deadline_cycles=2500.0, max_retries=1,
                                  retry_backoff_cycles=500.0)
        bus = EventBus()
        seen = []
        bus.subscribe(None, seen.append)
        scheduler, _ = scheduler_with([request(0, output_len=50)], policy,
                                      events=bus)
        scheduler.run(max_iterations=100)
        timeouts = [e for e in seen if isinstance(e, RequestTimedOut)]
        retries = [e for e in seen if isinstance(e, RequestRetried)]
        retired = [e for e in seen if isinstance(e, RequestRetired)]
        assert len(timeouts) == 2 and len(retries) == 1
        assert retries[0].attempt == 1
        assert retries[0].next_arrival == pytest.approx(3500.0)
        assert [e.status for e in retired] == ["timed_out"]


class TestSheddingAndAborts:
    def test_waiting_request_past_window_is_shed(self):
        policy = ResiliencePolicy(shed_wait_cycles=1500.0)
        blocker = request(0, output_len=50)
        starved = request(1, output_len=5)
        scheduler, runtime = scheduler_with([blocker, starved], policy,
                                            batch=1)
        scheduler.run(max_iterations=10)
        assert scheduler.outcomes[1] == "shed"
        assert runtime.counters["shed"] == 1
        # The blocker keeps running: only the starved request left.
        assert scheduler.pool.running_count() == 1

    def test_shed_event_reports_wait(self):
        from repro.sim.events import EventBus
        policy = ResiliencePolicy(shed_wait_cycles=1500.0)
        bus = EventBus()
        shed = []
        bus.subscribe(RequestShed, shed.append)
        scheduler, _ = scheduler_with(
            [request(0, output_len=50), request(1, output_len=5)],
            policy, batch=1, events=bus)
        scheduler.run(max_iterations=10)
        assert len(shed) == 1
        assert shed[0].request_id == 1
        assert shed[0].waited > 1500.0

    def test_abort_terminates_running_victim(self):
        plan = FaultPlan(seed=0, faults=(
            RequestAbort(start=1500.0, duration=0.0, ordinal=0),))
        policy = ResiliencePolicy(deadline_cycles=1e6)
        scheduler, runtime = scheduler_with(
            [request(0, output_len=50)], policy,
            injector=FaultInjector(plan))
        scheduler.run(max_iterations=10)
        assert scheduler.outcomes == {0: "aborted"}
        assert runtime.counters["aborted"] == 1
        assert runtime.counters["faults"] == 1
        assert len(scheduler.pool) == 0


class TestKvFaultWindows:
    def _allocator(self, blocks=64):
        block_bytes = 2 * 4096 * 2 * 32 * 16
        return PagedKvAllocator(
            PagedKvConfig(block_tokens=16,
                          capacity_bytes=block_bytes * blocks), GPT3_7B)

    def test_admission_skips_blocked_channel_until_window_ends(self):
        from repro.sim.events import EventBus
        from repro.serving.events import RequestAdmitted
        plan = FaultPlan(seed=0, faults=(
            KvFault(start=0.0, duration=2500.0, channel=0),))
        policy = ResiliencePolicy(deadline_cycles=1e6)
        bus = EventBus()
        admitted = []
        bus.subscribe(RequestAdmitted, admitted.append)

        def assign(requests):
            """Pin request id to channel id for the window test."""
            for req in requests:
                if req.channel is None:
                    req.channel = req.request_id

        pool = RequestPool()
        blocked = request(0, output_len=10)
        driver = request(1, output_len=10)
        pool.submit_all([blocked, driver])
        runtime = ResilienceRuntime(policy, injector=FaultInjector(plan))
        scheduler = IterationScheduler(
            pool, constant_executor, max_batch_size=4,
            allocators=[self._allocator(), self._allocator()],
            assign_channels=assign, events=bus, resilience=runtime)
        scheduler.run(max_iterations=50)
        assert scheduler.outcomes == {0: "completed", 1: "completed"}
        times = {e.request_id: e.time for e in admitted}
        # The driver admits immediately; the blocked request only after
        # its channel's KV window closes.
        assert times[1] == pytest.approx(0.0)
        assert times[0] >= 2500.0


class TestLatencyPenalties:
    def test_stall_penalty_and_owed_cycles_drain_once(self):
        plan = FaultPlan(seed=0, faults=(
            ChannelStall(start=0.0, duration=1e5, channel=0,
                         stall_cycles=250.0),))
        runtime = ResilienceRuntime(ResiliencePolicy(),
                                    injector=FaultInjector(plan))
        runtime.charge(100.0)
        executor = resilient_executor(runtime, constant_executor)
        batch = [InferenceRequest(0, input_len=8, output_len=8, channel=0)]
        runtime.now = 50.0
        assert executor(batch) == pytest.approx(LATENCY + 250.0 + 100.0)
        # Owed cycles drained; only the stall remains.
        assert executor(batch) == pytest.approx(LATENCY + 250.0)
        runtime.now = 2e5  # outside the window
        assert executor(batch) == pytest.approx(LATENCY)


class TestRetryExhaustion:
    """Persistent stalls exhaust retries into exactly one terminal status.

    A :class:`ChannelStall` covering every channel for the whole run
    guarantees each attempt blows its deadline, so every request walks
    the full retry ladder and must land in ``timed_out`` exactly once —
    no double-retire, and the pool observer is detached on the way out.
    The behaviour must be identical under ``grouping="auto"`` and
    ``"off"`` (resilience stands the grouped fast path down).
    """

    @staticmethod
    def _register_stall_wall():
        from repro.registry import REGISTRY

        def stall_wall(serving, channels, **options):
            """Persistent stall on every channel (test-only component)."""
            stall = float(options.pop("stall_cycles", 1e6))
            if options:
                raise ValueError(f"unknown faults option(s) "
                                 f"{sorted(options)} for 'stall-wall'")
            faults = tuple(
                ChannelStall(start=0.0, duration=1e15, channel=channel,
                             stall_cycles=stall)
                for channel in range(max(1, channels)))
            return FaultInjector(FaultPlan(seed=0, faults=faults))

        REGISTRY.register("faults", "stall-wall", stall_wall,
                          option_names=("stall_cycles",), replace=True)

    def _spec(self, grouping):
        self._register_stall_wall()
        return ScenarioSpec(
            **FAST, system="neupims",
            traffic=TrafficSpec.poisson(rate_per_kcycle=0.02,
                                        horizon_cycles=2e5, seed=5,
                                        max_requests=3),
            serving=ServingSpec(max_batch_size=4, grouping=grouping,
                                deadline_cycles=5e5, max_retries=1,
                                retry_backoff_cycles=1e5),
            faults="stall-wall")

    @pytest.mark.parametrize("grouping", ["auto", "off"])
    def test_exhausted_retries_terminate_exactly_once(self, grouping):
        retired = []
        session = Session(self._spec(grouping))
        session.events.subscribe(RequestRetired, retired.append)
        session.materialize()
        submitted = session.scheduler.pool.waiting()
        assert len(submitted) == 3
        result = session.run()

        # Exactly one terminal status per request, all timed out.
        assert {r["status"] for r in result.requests} == {"timed_out"}
        assert sorted(r["request_id"] for r in result.requests) == [0, 1, 2]
        per_request = {}
        for event in retired:
            per_request[event.request_id] = \
                per_request.get(event.request_id, 0) + 1
        assert per_request == {0: 1, 1: 1, 2: 1}, "double retire"

        # Every attempt blew its deadline: max_retries + 1 timeouts per
        # request, the final one terminal.
        assert result.resilience["timed_out"] == 3
        assert result.resilience["retries"] == 3
        assert result.resilience["timeouts"] == 6
        assert result.resilience.get("completed", 0) == 0

        # The pool drained and detached its status observers, so stale
        # callbacks cannot corrupt the buckets after retirement.
        assert len(session.scheduler.pool) == 0
        for request in submitted:
            assert "_status_observer" not in request.__dict__

    def test_grouping_modes_agree_bit_identically(self):
        auto = Session(self._spec("auto")).run()
        off = Session(self._spec("off")).run()
        assert auto.to_dict() == off.to_dict()


class TestSessionNeutrality:
    def _spec(self, **serving):
        return ScenarioSpec(
            **FAST,
            traffic=TrafficSpec.poisson(rate_per_kcycle=0.02,
                                        horizon_cycles=2e5, seed=5,
                                        max_requests=6),
            serving=ServingSpec(max_batch_size=4, **serving))

    def test_idle_runtime_is_latency_neutral(self):
        # Resilience knobs set but never firing: records identical to a
        # run with no runtime attached at all.
        plain = Session(self._spec()).run()
        guarded = Session(self._spec(deadline_cycles=1e12,
                                     max_retries=3,
                                     retry_backoff_cycles=1e5,
                                     shed_wait_cycles=1e12)).run()
        assert guarded.records == plain.records
        assert guarded.latency_ms == plain.latency_ms
        assert guarded.total_time_cycles == plain.total_time_cycles
        assert guarded.resilience.get("completed") == len(plain.requests)
        assert guarded.resilience.get("retries", 0) == 0

    def test_default_session_has_no_runtime(self):
        session = Session(self._spec())
        session.run()
        assert session.resilience is None
        assert session.fault_injector is None

    def test_default_result_statuses_all_completed(self):
        result = Session(self._spec()).run()
        assert result.requests
        assert {r["status"] for r in result.requests} == {"completed"}
