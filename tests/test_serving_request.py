"""Unit tests for the request lifecycle."""

import pytest

from repro.serving.request import InferenceRequest, RequestStatus


class TestValidation:
    def test_nonpositive_input_raises(self):
        with pytest.raises(ValueError):
            InferenceRequest(0, input_len=0, output_len=10)

    def test_nonpositive_output_raises(self):
        with pytest.raises(ValueError):
            InferenceRequest(0, input_len=10, output_len=0)

    def test_generated_out_of_range_raises(self):
        with pytest.raises(ValueError):
            InferenceRequest(0, input_len=10, output_len=10, generated=11)


class TestLifecycle:
    def test_seq_len_is_prompt_plus_generated(self):
        request = InferenceRequest(0, input_len=10, output_len=20, generated=5)
        assert request.seq_len == 15

    def test_advance_increments_generated(self):
        request = InferenceRequest(0, input_len=10, output_len=3)
        request.advance()
        assert request.generated == 1
        assert not request.is_finished

    def test_advance_to_completion_sets_done(self):
        request = InferenceRequest(0, input_len=10, output_len=2)
        request.advance(2)
        assert request.is_finished
        assert request.status is RequestStatus.DONE

    def test_advance_clamps_at_output_len(self):
        request = InferenceRequest(0, input_len=10, output_len=2)
        request.advance(10)
        assert request.generated == 2

    def test_advance_finished_request_raises(self):
        request = InferenceRequest(0, input_len=10, output_len=1, generated=1)
        with pytest.raises(RuntimeError):
            request.advance()

    def test_advance_nonpositive_raises(self):
        request = InferenceRequest(0, input_len=10, output_len=5)
        with pytest.raises(ValueError):
            request.advance(0)

    def test_begin_generation_sets_channel_and_status(self):
        request = InferenceRequest(0, input_len=10, output_len=5)
        request.begin_generation(channel=7)
        assert request.status is RequestStatus.RUNNING
        assert request.channel == 7

    def test_new_request_waiting(self):
        request = InferenceRequest(0, input_len=1, output_len=1)
        assert request.status is RequestStatus.WAITING
        assert request.channel is None
