"""Tests for the functional (numerical) PIM and NPU simulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.timing import HbmOrganization
from repro.npu.functional import (
    FunctionalSystolicArray,
    functional_decoder_block,
    reference_gemm,
)
from repro.npu.systolic import SystolicConfig
from repro.pim.functional import (
    FunctionalPimChannel,
    pim_attention,
    reference_attention,
)


class TestFunctionalPimGemv:
    def test_gemv_matches_numpy(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((100, 300))
        vector = rng.standard_normal(300)
        channel = FunctionalPimChannel()
        result = channel.gemv(matrix, vector)
        expected = matrix.astype(np.float16).astype(np.float32) \
            @ vector.astype(np.float16).astype(np.float32)
        np.testing.assert_allclose(result, expected, rtol=2e-3, atol=1e-2)

    def test_rows_interleave_across_banks(self):
        channel = FunctionalPimChannel()
        matrix = np.arange(64 * 4, dtype=np.float32).reshape(64, 4)
        channel.load_matrix(matrix)
        # Row 0 and row 32 land on bank 0 (32 banks).
        bank0_rows = [idx for idx, _ in channel.banks[0].rows]
        assert bank0_rows == [0, 32]

    def test_wave_count_matches_timing_model(self):
        """The functional dataflow uses exactly the wave count the latency
        models charge (waves = row_rounds x col_pages)."""
        from repro.pim.gemv import GemvOp
        org = HbmOrganization()
        rng = np.random.default_rng(1)
        rows, cols = 70, 1000
        matrix = rng.standard_normal((rows, cols))
        vector = rng.standard_normal(cols)
        channel = FunctionalPimChannel(org)
        channel.gemv(matrix, vector)
        expected = GemvOp(rows=rows, cols=cols).waves(org)
        assert channel.wave_count == expected

    def test_shape_mismatch_raises(self):
        channel = FunctionalPimChannel()
        with pytest.raises(ValueError):
            channel.gemv(np.zeros((4, 5)), np.zeros(6))

    def test_gwrite_counts_pages(self):
        channel = FunctionalPimChannel()
        # 1000 fp16 elements over 512-element pages -> 2 GWRITEs.
        assert channel.gwrite(np.zeros(1000)) == 2

    @given(rows=st.integers(1, 80), cols=st.integers(1, 600))
    @settings(max_examples=20, deadline=None)
    def test_gemv_property_random_shapes(self, rows, cols):
        rng = np.random.default_rng(rows * 1000 + cols)
        matrix = rng.uniform(-1, 1, (rows, cols))
        vector = rng.uniform(-1, 1, cols)
        result = FunctionalPimChannel().gemv(matrix, vector)
        expected = matrix.astype(np.float16).astype(np.float32) \
            @ vector.astype(np.float16).astype(np.float32)
        np.testing.assert_allclose(result, expected, rtol=5e-3, atol=5e-2)


class TestFunctionalAttention:
    def test_pim_attention_matches_reference(self):
        rng = np.random.default_rng(2)
        seq, head_dim = 96, 128
        keys = rng.standard_normal((seq, head_dim))
        values = rng.standard_normal((seq, head_dim))
        query = rng.standard_normal(head_dim)
        result = pim_attention(keys, values, query)
        expected = reference_attention(
            keys.astype(np.float16).astype(np.float32),
            values.astype(np.float16).astype(np.float32),
            query.astype(np.float16).astype(np.float32))
        np.testing.assert_allclose(result, expected, rtol=1e-2, atol=5e-2)

    def test_attention_probabilities_normalized_inside(self):
        """Attend output is a convex combination of value rows."""
        rng = np.random.default_rng(3)
        seq, head_dim = 40, 64
        keys = rng.standard_normal((seq, head_dim))
        values = np.ones((seq, head_dim))
        query = rng.standard_normal(head_dim)
        result = pim_attention(keys, values, query)
        np.testing.assert_allclose(result, np.ones(head_dim), rtol=2e-2)


class TestFunctionalSystolic:
    def test_gemm_matches_reference(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((37, 300))
        w = rng.standard_normal((300, 260))
        array = FunctionalSystolicArray()
        np.testing.assert_allclose(array.gemm(a, w), reference_gemm(a, w),
                                   rtol=1e-3, atol=1e-2)

    def test_tile_count_matches_schedule(self):
        from repro.model.layers import GemmShape
        from repro.npu.systolic import schedule_gemm
        rng = np.random.default_rng(5)
        a = rng.standard_normal((10, 300))
        w = rng.standard_normal((300, 500))
        array = FunctionalSystolicArray()
        array.gemm(a, w)
        schedule = schedule_gemm(GemmShape(10, 300, 500), SystolicConfig(), 1)
        assert array.tiles_executed == schedule.total_tiles

    def test_contraction_mismatch_raises(self):
        with pytest.raises(ValueError):
            FunctionalSystolicArray().gemm(np.zeros((2, 3)), np.zeros((4, 2)))

    @given(m=st.integers(1, 40), k=st.integers(1, 300), n=st.integers(1, 300))
    @settings(max_examples=20, deadline=None)
    def test_gemm_property_random_shapes(self, m, k, n):
        rng = np.random.default_rng(m * 7 + k * 3 + n)
        a = rng.uniform(-1, 1, (m, k))
        w = rng.uniform(-1, 1, (k, n))
        result = FunctionalSystolicArray().gemm(a, w)
        np.testing.assert_allclose(result, reference_gemm(a, w),
                                   rtol=5e-3, atol=5e-2)

    def test_decoder_block_chain_shapes(self):
        rng = np.random.default_rng(6)
        d = 64
        hidden = rng.standard_normal((4, d)) * 0.1
        out = functional_decoder_block(
            hidden,
            rng.standard_normal((d, 3 * d)) * 0.1,
            rng.standard_normal((d, d)) * 0.1,
            rng.standard_normal((d, 4 * d)) * 0.1,
            rng.standard_normal((4 * d, d)) * 0.1,
        )
        assert out.shape == (4, d)
        assert np.isfinite(out).all()
