"""The streaming Session API: events, step-wise execution, early stop.

Pins the redesign's core guarantee — the event stream is a pure
*observation* of the batch run: records and all aggregates are
bit-identical between ``run()``, ``stream()`` and manual ``step()``
loops, across grouping modes and traffic kinds, and a bus without
subscribers never constructs an event (zero-overhead contract).
"""

import pytest

from repro.api import ScenarioSpec, ServingSpec, Session, TrafficSpec
from repro.api.bench import bucketed_replay_triples
from repro.serving.events import (IterationCompleted, KvPressure,
                                  RequestAdmitted, RequestRetired,
                                  WindowCommitted)
from repro.sim.events import ClockAdvanced, EventBus

FAST = dict(model="gpt3-7b", fidelity="analytic")


def poisson_spec(grouping="auto", **serving_overrides):
    serving = dict(max_batch_size=16, grouping=grouping)
    serving.update(serving_overrides)
    return ScenarioSpec(
        layers_resident=4, **FAST,
        traffic=TrafficSpec.poisson(dataset="alpaca", rate_per_kcycle=0.02,
                                    horizon_cycles=1e7, seed=7,
                                    max_requests=24),
        serving=ServingSpec(**serving))


def replay_spec(grouping="auto", requests=48):
    return ScenarioSpec(
        layers_resident=4, **FAST,
        traffic=TrafficSpec.replay(bucketed_replay_triples(requests)),
        serving=ServingSpec(max_batch_size=requests,
                            kv_capacity_bytes=1 << 30, grouping=grouping))


class TestEventBus:
    def test_inactive_until_subscribed(self):
        bus = EventBus()
        assert not bus.active
        unsubscribe = bus.subscribe(None, lambda e: None)
        assert bus.active
        unsubscribe()
        assert not bus.active
        unsubscribe()  # double-unsubscribe is harmless
        assert not bus.active

    def test_double_unsubscribe_spares_duplicate_subscription(self):
        # Two consumers may register the same handler object; one
        # consumer's (harmless) repeated unsubscribe must not tear down
        # the other's live subscription.
        bus = EventBus()
        seen = []
        first = bus.subscribe(None, seen.append)
        second = bus.subscribe(None, seen.append)
        first()
        first()  # repeated: must not remove the second subscription
        bus.emit("event")
        assert seen == ["event"]
        second()
        assert not bus.active

    def test_in_handler_unsubscribe_does_not_skip_peers(self):
        # A one-shot handler tearing itself down mid-delivery must not
        # starve the subscriber registered after it.
        bus = EventBus()
        seen_a, seen_b = [], []

        def one_shot(event):
            seen_a.append(event)
            unsubscribe_a()

        unsubscribe_a = bus.subscribe(None, one_shot)
        bus.subscribe(None, seen_b.append)
        bus.emit("first")
        bus.emit("second")
        assert seen_a == ["first"]
        assert seen_b == ["first", "second"]

    def test_type_dispatch_and_wildcard_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(ClockAdvanced, lambda e: seen.append(("typed", e)))
        bus.subscribe(None, lambda e: seen.append(("any", e)))
        event = ClockAdvanced(time=3.0)
        bus.emit(event)
        bus.emit("unrelated")
        assert seen == [("typed", event), ("any", event),
                        ("any", "unrelated")]

    def test_engine_publishes_clock_advanced(self):
        from repro.sim.engine import EventEngine
        engine = EventEngine()
        bus = EventBus()
        engine.attach_events(bus)
        engine.schedule_at(5.0, lambda: None)
        engine.run()  # no subscribers: nothing constructed, still runs
        times = []
        bus.subscribe(ClockAdvanced, lambda e: times.append(e.time))
        engine.schedule_at(7.0, lambda: None)
        engine.schedule_at(9.0, lambda: None)
        engine.run()
        assert times == [7.0, 9.0]


class TestStreamBatchEquality:
    @pytest.mark.parametrize("grouping", ["auto", "off"])
    @pytest.mark.parametrize("build", [poisson_spec, replay_spec])
    def test_records_identical(self, build, grouping):
        batch = Session(build(grouping)).run()
        streaming = Session(build(grouping))
        events = list(streaming.stream())
        streamed = streaming.result()
        assert streamed.to_dict() == batch.to_dict()
        iteration_events = [e for e in events
                            if isinstance(e, IterationCompleted)]
        assert len(iteration_events) == batch.iterations
        streamed_records = [
            (e.record.index, e.record.start_time, e.record.latency,
             e.record.batch_size) for e in iteration_events]
        assert streamed_records == [
            (r["index"], r["start_time"], r["latency"], r["batch_size"])
            for r in batch.records]

    @pytest.mark.parametrize("grouping", ["auto", "off"])
    def test_step_loop_matches_run(self, grouping):
        batch = Session(poisson_spec(grouping)).run()
        stepped = Session(poisson_spec(grouping))
        stepped.materialize()
        while stepped.step() is not None:
            pass
        stepped.scheduler.sync_grouped()
        assert stepped.result().to_dict() == batch.to_dict()

    def test_grouping_modes_agree_through_stream(self):
        auto = Session(replay_spec("auto"))
        off = Session(replay_spec("off"))
        list(auto.stream())
        list(off.stream())
        assert auto.result().to_dict() == off.result().to_dict()

    def test_warmed_stream_matches_run(self):
        spec = ScenarioSpec(layers_resident=2, **FAST,
                            traffic=TrafficSpec.warmed(batch_size=16,
                                                       num_batches=3,
                                                       seed=2))
        batch = Session(spec).run()
        streaming = Session(spec)
        events = list(streaming.stream())
        assert streaming.result().to_dict() == batch.to_dict()
        assert [e.record.latency for e in events
                if isinstance(e, IterationCompleted)] == \
            [r["latency"] for r in batch.records]


class TestEventTaxonomy:
    def test_admissions_and_retirements_match_records(self):
        session = Session(poisson_spec("off"))
        events = list(session.stream())
        result = session.result()
        admitted = sum(r["admitted"] for r in result.records)
        retired = sum(r["retired"] for r in result.records)
        admitted_events = [e for e in events
                           if isinstance(e, RequestAdmitted)]
        retired_events = [e for e in events
                          if isinstance(e, RequestRetired)]
        # Every arrival is admitted and eventually retired; the *last*
        # retirement happens in the drain step after the final record,
        # so the stream sees it while the record sums stop one short.
        assert len(admitted_events) == len(session.arrivals)
        assert len(retired_events) == len(session.arrivals)
        assert admitted == len(admitted_events)
        assert retired <= len(retired_events) <= retired + \
            session.scheduler.max_batch_size

    def test_window_committed_under_grouping(self):
        session = Session(replay_spec("auto"))
        events = list(session.stream())
        windows = [e for e in events if isinstance(e, WindowCommitted)]
        assert windows, "class-friendly replay should group-commit"
        grouped_iterations = sum(w.iterations for w in windows)
        assert 0 < grouped_iterations <= session.result().iterations
        # No window events when grouping is off.
        off = Session(replay_spec("off"))
        assert not [e for e in off.stream()
                    if isinstance(e, WindowCommitted)]

    def test_kv_pressure_emitted_when_capacity_is_tight(self):
        session = Session(poisson_spec(
            "auto", kv_capacity_bytes=1 << 22, max_batch_size=8))
        events = list(session.stream())
        assert [e for e in events if isinstance(e, KvPressure)]

    def test_subscribers_see_events_during_batch_run(self):
        session = Session(poisson_spec("auto"))
        seen = []
        session.events.subscribe(IterationCompleted,
                                 lambda e: seen.append(e))
        result = session.run()
        assert len(seen) == result.iterations


class TestZeroOverhead:
    def test_batch_run_never_activates_the_bus(self):
        session = Session(poisson_spec("auto"))
        session.run()
        assert not session.events.active

    def test_stream_unsubscribes_on_close(self):
        session = Session(poisson_spec("auto"))
        stream = session.stream()
        next(stream)
        assert session.events.active
        stream.close()
        assert not session.events.active


class TestRunUntil:
    def test_early_stop_returns_partial_then_resumes(self):
        session = Session(poisson_spec("auto"))
        partial = session.run_until(
            lambda s: len(s.scheduler.stats.iterations) >= 5)
        assert 0 < partial.iterations < Session(poisson_spec("auto")) \
            .run().iterations
        full = session.run()
        assert full.to_dict() == Session(poisson_spec("auto")).run() \
            .to_dict()

    def test_predicate_sees_synchronized_state(self):
        session = Session(replay_spec("auto"))
        observed = []

        def snoop(s):
            # Grouped windows must be flushed before the predicate runs:
            # the pool's running requests carry exact generated counts.
            assert s.scheduler._grouped_state is None
            observed.append(len(s.pool.running()))
            return False

        session.run_until(snoop)
        assert observed and max(observed) > 0

    def test_run_until_never_caches(self):
        session = Session(poisson_spec("off"))
        partial = session.run_until(lambda s: True)
        assert partial.iterations == 1
        assert session.run().iterations > 1

    def test_warmed_run_until(self):
        spec = ScenarioSpec(layers_resident=2, **FAST,
                            traffic=TrafficSpec.warmed(batch_size=8,
                                                       num_batches=4))
        session = Session(spec)
        partial = session.run_until(lambda s: s._batch_cursor >= 2)
        assert partial.iterations == 2
        assert session.run().iterations == 4
