"""Tests for the summarization (prefill) phase model."""

import pytest

from repro.core.prefill import (
    EndToEndResult,
    StandaloneNpu,
    end_to_end_request,
)
from repro.model.spec import GPT3_7B
from repro.serving.request import InferenceRequest


class TestStandaloneNpu:
    def test_prefill_latency_positive(self):
        npu = StandaloneNpu(GPT3_7B)
        result = npu.prefill(128)
        assert result.compute_cycles > 0
        assert result.kv_transfer_cycles > 0

    def test_prefill_scales_superlinearly_with_prompt(self):
        """Summarization attention is quadratic in prompt length."""
        npu = StandaloneNpu(GPT3_7B)
        short = npu.prefill(256).compute_cycles
        long = npu.prefill(1024).compute_cycles
        assert long > 4 * short

    def test_kv_transfer_linear_in_prompt(self):
        npu = StandaloneNpu(GPT3_7B)
        assert npu.prefill(200).kv_transfer_cycles == pytest.approx(
            2 * npu.prefill(100).kv_transfer_cycles)

    def test_tp_reduces_prefill_compute(self):
        full = StandaloneNpu(GPT3_7B, tp=1).prefill(512)
        shard = StandaloneNpu(GPT3_7B, tp=4).prefill(512)
        assert shard.compute_cycles < full.compute_cycles

    def test_batch_prefill_amortizes(self):
        """Batched summarization is cheaper than serial prompts."""
        npu = StandaloneNpu(GPT3_7B)
        batched = npu.prefill_batch([128] * 8).compute_cycles
        serial = 8 * npu.prefill(128).compute_cycles
        assert batched < serial

    def test_invalid_inputs_raise(self):
        npu = StandaloneNpu(GPT3_7B)
        with pytest.raises(ValueError):
            npu.prefill(0)
        with pytest.raises(ValueError):
            npu.prefill_batch([])
        with pytest.raises(ValueError):
            StandaloneNpu(GPT3_7B, kv_link_bandwidth=0.0)


class TestEndToEnd:
    def test_lifecycle_combines_phases(self):
        request = InferenceRequest(0, input_len=128, output_len=32)
        result = end_to_end_request(GPT3_7B, request, batch_context=16)
        assert result.total_cycles == pytest.approx(
            result.prefill_cycles + result.generation_cycles)
        assert result.ttft_cycles == result.prefill_cycles

    def test_generation_dominates_long_outputs(self):
        """For chat-style outputs, generation time >> prefill time."""
        request = InferenceRequest(1, input_len=64, output_len=256)
        result = end_to_end_request(GPT3_7B, request, batch_context=16)
        assert result.generation_cycles > result.prefill_cycles

    def test_result_dataclass_totals(self):
        result = EndToEndResult(prefill_cycles=10.0, generation_cycles=90.0,
                                output_tokens=9)
        assert result.total_cycles == 100.0
