"""Unit tests for the sharded execution subsystem (`repro.exec`).

Covers backend resolution, the ordering contract (results in submission
order regardless of completion order), chunked dispatch, lazy task
consumption, per-worker warmup, and task-spec pickling.  Cross-process
determinism of whole sweeps lives in ``test_exec_determinism.py``.
"""

from __future__ import annotations

import functools
import os
import time

import pytest

from repro.core.config import NeuPimsConfig
from repro.exec import (ExecutionBackend, ParallelRunner, PerfCacheWarmup,
                        ProcessPoolBackend, SerialBackend, TaskSpec,
                        available_workers, is_picklable, resolve_backend)
from repro.perf import CALIBRATION_CACHE, cache, invalidate


# ----------------------------------------------------------------------
# Module-level task functions: process backends ship TaskSpecs through
# pickle, which serializes callables by reference.
# ----------------------------------------------------------------------

def _square(x: int) -> int:
    return x * x


def _add(a: int, b: int, bias: int = 0) -> int:
    return a + b + bias


def _sleep_identity(delay: float, value: int) -> int:
    time.sleep(delay)
    return value


_WARMED_IN_PID = None


def _mark_warm() -> None:
    global _WARMED_IN_PID
    _WARMED_IN_PID = os.getpid()


def _observe_warm() -> tuple:
    return (os.getpid(), _WARMED_IN_PID)


class TestResolveBackend:
    @pytest.mark.parametrize("spec", [None, False, 0, 1, "serial", "SERIAL"])
    def test_serial_specs(self, spec):
        assert isinstance(resolve_backend(spec), SerialBackend)

    def test_true_means_machine_sized_pool(self):
        backend = resolve_backend(True)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == available_workers()

    def test_int_pins_worker_count(self):
        backend = resolve_backend(3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 3

    def test_process_string_specs(self):
        assert resolve_backend("process").workers == available_workers()
        assert resolve_backend("process:5").workers == 5

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend
        pool = ProcessPoolBackend(2)
        assert resolve_backend(pool) is pool

    def test_tuning_knobs_reach_constructed_pool(self):
        warmup = PerfCacheWarmup()
        backend = resolve_backend(2, chunk_size=7, start_method="fork",
                                  warmup=warmup)
        assert backend.chunk_size == 7
        assert backend.start_method == "fork"
        assert backend.warmup is warmup

    @pytest.mark.parametrize("bad", ["bogus", "process:", object(), 2.5])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises((ValueError, TypeError)):
            resolve_backend(bad)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            resolve_backend(-2)

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(2, chunk_size=0)


class TestTaskSpec:
    def test_call_applies_args_and_kwargs(self):
        task = TaskSpec(_add, (2, 3), {"bias": 10})
        assert task() == 15

    def test_specs_are_picklable(self):
        assert is_picklable(TaskSpec(_add, (1, 2)))
        assert is_picklable(TaskSpec(functools.partial(_add, 1), (2,)))
        assert is_picklable(PerfCacheWarmup((NeuPimsConfig(),)))

    def test_is_picklable_rejects_closures(self):
        local = lambda: None  # noqa: E731 - deliberately unpicklable
        assert not is_picklable(local)


class TestSerialBackend:
    def test_run_preserves_order(self):
        tasks = [TaskSpec(_square, (i,)) for i in range(10)]
        assert SerialBackend().run(tasks) == [i * i for i in range(10)]

    def test_starmap_convenience(self):
        assert SerialBackend().starmap(_add, [(1, 2), (3, 4)]) == [3, 7]


class TestParallelRunner:
    def test_map_and_starmap_serial(self):
        runner = ParallelRunner()
        assert not runner.is_parallel
        assert runner.map(_square, range(5)) == [0, 1, 4, 9, 16]
        assert runner.starmap(_add, [(1, 2), (5, 6)]) == [3, 11]

    def test_parallel_flag(self):
        assert ParallelRunner(parallel=2).is_parallel

    def test_map_matches_serial_across_backends(self):
        serial = ParallelRunner().map(_square, range(20))
        pooled = ParallelRunner(parallel=2).map(_square, range(20))
        assert pooled == serial


class TestProcessPoolBackend:
    def test_empty_task_list_skips_pool(self):
        assert ProcessPoolBackend(2).run(iter([])) == []

    def test_single_chunk_one_worker_runs_inline(self):
        backend = ProcessPoolBackend(1, chunk_size=8)
        assert backend.run(TaskSpec(_square, (i,)) for i in range(5)) \
            == [0, 1, 4, 9, 16]

    def test_submission_order_despite_completion_order(self):
        # Earlier tasks sleep longer, so completion order is reversed;
        # results must still come back in submission order.
        delays = [0.08, 0.04, 0.0, 0.0]
        backend = ProcessPoolBackend(2, start_method="fork")
        results = backend.run(
            TaskSpec(_sleep_identity, (delay, i))
            for i, delay in enumerate(delays))
        assert results == [0, 1, 2, 3]

    @pytest.mark.parametrize("chunk_size", [1, 3, 64])
    def test_chunked_dispatch_preserves_order(self, chunk_size):
        backend = ProcessPoolBackend(2, chunk_size=chunk_size,
                                     start_method="fork")
        assert backend.run(TaskSpec(_square, (i,)) for i in range(17)) \
            == [i * i for i in range(17)]

    def test_warmup_runs_in_worker_before_tasks(self):
        backend = ProcessPoolBackend(2, start_method="fork",
                                     warmup=_mark_warm)
        for pid, warmed_pid in backend.run(
                TaskSpec(_observe_warm) for _ in range(8)):
            assert warmed_pid == pid

    def test_tasks_consumed_lazily(self):
        # The backend must not materialize the whole task stream before
        # dispatch; feeding it a generator works and streams through.
        def tasks():
            for i in range(10):
                yield TaskSpec(_square, (i,))

        backend = ProcessPoolBackend(2, chunk_size=2, start_method="fork")
        assert backend.run(tasks()) == [i * i for i in range(10)]


class TestPerfCacheWarmup:
    def test_warmup_populates_calibration_cache(self):
        invalidate()
        assert cache(CALIBRATION_CACHE).info()["size"] == 0
        PerfCacheWarmup((NeuPimsConfig(),))()
        assert cache(CALIBRATION_CACHE).info()["size"] == 1
