"""Session materialization and RunResult behavior for every mode.

Includes the regression pin required by the API redesign: the
spec-driven serving run must be numerically identical to the pre-API
hand wiring of ``examples/serving_simulation.py``.
"""

import json

import pytest

from repro.api import (RunResult, ScenarioSpec, ServingSpec, Session,
                       TrafficSpec, run_scenario)
from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B
from repro.serving.paging import (PagedKvAllocator, PagedKvConfig,
                                  channel_allocators)
from repro.serving.pool import RequestPool
from repro.serving.scheduler import IterationScheduler
from repro.serving.trace import ALPACA, SHAREGPT, poisson_arrivals, \
    sample_batches, warmed_batch

FAST = dict(model="gpt3-7b", fidelity="analytic")


class TestMeasurementRuns:
    def test_single_warmed_batch_matches_device(self):
        spec = ScenarioSpec(traffic=TrafficSpec.warmed(batch_size=32,
                                                       seed=5),
                            layers_resident=2, **FAST)
        result = run_scenario(spec)
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        batch = warmed_batch(SHAREGPT, 32, seed=5)
        expected = device.iteration(batch)
        assert result.kind == "measurement"
        assert result.iterations == 1
        assert result.mean_iteration_cycles == expected.latency
        assert result.tokens_per_second == 32 / (expected.latency / 1e9)
        assert result.total_tokens == 32
        assert result.max_batch_size == 32

    def test_sample_schedule_forces_legacy_seed_schedule(self):
        # One batch under sample_schedule draws sample_batches' batch 0
        # (seed*1009), matching measure_device/ablation-grid semantics.
        spec = ScenarioSpec(traffic=TrafficSpec.warmed(
            batch_size=16, seed=5, sample_schedule=True),
            layers_resident=2, **FAST)
        result = run_scenario(spec)
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        [batch] = sample_batches(SHAREGPT, 16, 1, seed=5)
        assert result.mean_iteration_cycles == \
            device.iteration(batch).latency

    def test_compare_systems_matches_measure_device_single_batch(self):
        # Regression: num_batches=1 with a nonzero seed must still match
        # the legacy measure_device loop record-for-record.
        from repro.analysis.metrics import (build_standard_devices,
                                            compare_systems, measure_device)
        from repro.core.config import NeuPimsConfig
        devices = build_standard_devices(GPT3_7B, tp=4, layers_resident=2)
        legacy = {
            name: measure_device(name, runner, GPT3_7B, SHAREGPT, 64,
                                 num_batches=1, seed=5,
                                 config=NeuPimsConfig())
            for name, runner in devices.items()
        }
        new = compare_systems(GPT3_7B, SHAREGPT, 64, tp=4,
                              layers_resident=2, num_batches=1, seed=5)
        for name, measurement in legacy.items():
            assert new[name].tokens_per_second == \
                measurement.tokens_per_second
            assert new[name].utilization == measurement.utilization

    def test_energy_uses_hbm_power_for_non_pim_systems(self):
        from repro.analysis.energy import EnergyParams, iteration_energy
        from repro.api.session import (HBM_CHANNEL_POWER_MW,
                                       PIM_CHANNEL_POWER_MW)
        from repro.core.device import IterationResult
        spec = ScenarioSpec(system="gpu-only", layers_resident=2, **FAST,
                            traffic=TrafficSpec.warmed(batch_size=16))
        session = Session(spec)
        result = session.run()
        aggregate = IterationResult(latency=session._latency_acc,
                                    busy=dict(session._busy))
        params = EnergyParams(channels=session.config.num_channels)
        expected = iteration_energy(aggregate, result.total_tokens,
                                    HBM_CHANNEL_POWER_MW, params)
        wrong = iteration_energy(aggregate, result.total_tokens,
                                 PIM_CHANNEL_POWER_MW, params)
        assert result.energy_per_token_mj == expected.energy_per_token_mj
        assert result.energy_per_token_mj != wrong.energy_per_token_mj

    def test_multi_batch_uses_sample_schedule(self):
        spec = ScenarioSpec(traffic=TrafficSpec.warmed(batch_size=16,
                                                       num_batches=3,
                                                       seed=2),
                            layers_resident=2, **FAST)
        result = run_scenario(spec)
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        latencies = [device.iteration(b).latency
                     for b in sample_batches(SHAREGPT, 16, 3, seed=2)]
        assert [r["latency"] for r in result.records] == latencies

    def test_utilization_and_energy_reported(self):
        result = run_scenario(ScenarioSpec(
            traffic=TrafficSpec.warmed(batch_size=16), layers_resident=2,
            **FAST))
        assert {"npu", "pim", "npu_vector", "bandwidth"} <= \
            set(result.utilization)
        assert all(0.0 <= v <= 1.0 for v in result.utilization.values())
        assert result.energy_per_token_mj > 0

    def test_system_engine_used_when_pp_set(self):
        session = Session(ScenarioSpec(tp=2, pp=2, **FAST,
                                       traffic=TrafficSpec.warmed(
                                           batch_size=32)))
        result = session.run()
        assert session.system is not None
        assert session.system.scheme.pp == 2
        assert result.tokens_per_second > 0

    def test_every_baseline_system_runs(self):
        base = ScenarioSpec(traffic=TrafficSpec.warmed(batch_size=16),
                            layers_resident=2, **FAST)
        throughputs = {}
        for system in ("neupims", "npu-pim", "npu-only", "gpu-only",
                       "transpim"):
            throughputs[system] = run_scenario(
                base.override(system=system)).tokens_per_second
        assert all(v > 0 for v in throughputs.values())
        assert throughputs["neupims"] > throughputs["npu-pim"]


class TestFidelity:
    def test_cycle_uses_calibrated_estimator(self):
        from repro.perf.calibration import cached_calibrate
        base = ScenarioSpec(model="gpt3-7b", layers_resident=2,
                            traffic=TrafficSpec.warmed(batch_size=16))
        analytic_session = Session(base.override(fidelity="analytic"))
        cycle_session = Session(base.override(fidelity="cycle"))
        analytic = analytic_session.run()
        cycle = cycle_session.run()
        assert analytic.fidelity == "analytic"
        assert cycle.fidelity == "cycle"
        # The cycle path wires Algorithm 1 with constants *measured* from
        # the command-level DRAM simulation; the calibration test suite
        # pins that they agree with the closed form, so the two
        # fidelities corroborate each other on the same scenario.
        config = cycle_session.config
        assert cycle_session.device.estimator.latencies == cached_calibrate(
            config.timing, config.org, config.pim_timing, 2)
        ratio = cycle.mean_iteration_cycles / analytic.mean_iteration_cycles
        assert 0.9 < ratio < 1.1

    def test_session_exposes_calibrated_estimator(self):
        session = Session(ScenarioSpec(model="gpt3-7b", fidelity="cycle",
                                       traffic=TrafficSpec.warmed(
                                           batch_size=1)))
        estimator = session.calibrated_estimator()
        assert estimator.estimate(128) > 0


class TestServingRuns:
    def _scenario(self, **overrides):
        spec = ScenarioSpec(
            layers_resident=8, **FAST,
            traffic=TrafficSpec.poisson(dataset="alpaca",
                                        rate_per_kcycle=0.02,
                                        horizon_cycles=2e7, seed=7,
                                        max_requests=48))
        return spec.override(**overrides) if overrides else spec

    def test_identical_to_pre_api_hand_wiring(self):
        """The acceptance pin: examples/serving_simulation.py numbers."""
        spec = GPT3_7B
        device = NeuPimsDevice(spec, tp=spec.tensor_parallel,
                               layers_resident=8)
        arrivals = poisson_arrivals(ALPACA, rate_per_kcycle=0.02,
                                    horizon_cycles=2e7, seed=7)[:48]
        pool = RequestPool()
        pool.submit_all(arrivals)
        allocators = [
            PagedKvAllocator(PagedKvConfig(capacity_bytes=1 << 28), spec,
                             layers_resident=device.layers)
            for _ in range(device.channel_pool)
        ]
        tracker = device.attach_load_tracker()
        scheduler = IterationScheduler(
            pool, device.executor(), max_batch_size=16,
            allocators=allocators, assign_channels=device.assign_channels,
            load_tracker=tracker)
        stats = scheduler.run()

        result = run_scenario(self._scenario())
        assert result.kind == "serving"
        assert [(r["index"], r["start_time"], r["latency"], r["batch_size"],
                 r["admitted"], r["retired"]) for r in result.records] == \
            [(r.index, r.start_time, r.latency, r.batch_size, r.admitted,
              r.retired) for r in stats.iterations]
        assert result.total_tokens == stats.total_tokens
        assert result.total_time_cycles == stats.total_time
        assert result.tokens_per_second == \
            stats.throughput_tokens_per_second()

    def test_partial_stepping_then_run_covers_all_iterations(self):
        session = Session(self._scenario()).materialize()
        for _ in range(4):
            assert session.scheduler.run_iteration() is not None
        result = session.run()
        assert result.iterations == len(session.scheduler.stats.iterations)
        assert result.records[0]["index"] == 0
        # run() caches; a second call returns the same object
        assert session.run() is result

    def test_session_exposes_materialized_stack(self):
        session = Session(self._scenario()).materialize()
        assert len(session.arrivals) == 48
        assert len(session.pool) == 48
        assert session.load_tracker is not None
        assert session.allocators is not None
        assert len(session.allocators) == session.device.channel_pool

    def test_serving_knobs_disable_paging_and_tracking(self):
        session = Session(self._scenario(
            serving=ServingSpec(max_batch_size=8, paged_kv=False,
                                load_tracker=False))).materialize()
        assert session.allocators is None
        assert session.load_tracker is None
        assert session.scheduler.max_batch_size == 8
        result = session.run()
        assert result.max_batch_size <= 8

    def test_latency_summary_present(self):
        result = run_scenario(self._scenario())
        assert result.latency_ms["ttft_p50_ms"] > 0
        assert result.latency_ms["tpot_p99_ms"] > 0

    def test_replay_reproduces_poisson_run(self):
        arrivals = poisson_arrivals(ALPACA, rate_per_kcycle=0.02,
                                    horizon_cycles=2e7, seed=7)[:48]
        replay = ScenarioSpec(layers_resident=8, **FAST,
                              traffic=TrafficSpec.replay(arrivals))
        poisson = self._scenario()
        assert run_scenario(replay).records == \
            run_scenario(poisson).records

    def test_empty_replay_horizon_yields_empty_result(self):
        spec = ScenarioSpec(
            layers_resident=8, **FAST,
            traffic=TrafficSpec.poisson(rate_per_kcycle=1e-9,
                                        horizon_cycles=1e3, seed=0))
        result = run_scenario(spec)
        assert result.iterations == 0
        assert result.total_tokens == 0
        assert result.tokens_per_second == 0.0

    def test_baseline_serving_without_channels(self):
        spec = ScenarioSpec(
            model="gpt3-7b", system="npu-only", fidelity="analytic",
            layers_resident=8,
            traffic=TrafficSpec.poisson(dataset="alpaca",
                                        rate_per_kcycle=0.02,
                                        horizon_cycles=5e6, seed=1,
                                        max_requests=8))
        session = Session(spec).materialize()
        # non-NeuPIMs devices get a single pooled allocator, no binpack
        assert len(session.allocators) == 1
        assert session.load_tracker is None
        assert session.run().total_tokens > 0


class TestRunResultSerialization:
    def test_round_trips_through_json(self):
        result = run_scenario(ScenarioSpec(
            traffic=TrafficSpec.warmed(batch_size=16, num_batches=2),
            layers_resident=2, **FAST))
        payload = json.loads(json.dumps(result.to_dict()))
        restored = RunResult.from_dict(payload)
        assert restored == result

    def test_summary_rows_render(self):
        from repro.analysis.report import format_table
        result = run_scenario(ScenarioSpec(
            traffic=TrafficSpec.warmed(batch_size=16), layers_resident=2,
            **FAST))
        table = format_table(["metric", "value"], result.summary_rows())
        assert "throughput (tokens/s)" in table


class TestChannelAllocators:
    def test_one_allocator_per_channel(self):
        allocators = channel_allocators(
            PagedKvConfig(capacity_bytes=1 << 28), GPT3_7B, 4,
            layers_resident=8)
        assert len(allocators) == 4
        assert len({id(a) for a in allocators}) == 4
        assert all(a.total_blocks == allocators[0].total_blocks
                   for a in allocators)

    def test_rejects_nonpositive_channel_count(self):
        with pytest.raises(ValueError):
            channel_allocators(PagedKvConfig(), GPT3_7B, 0)
