"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; these tests execute the
fast ones as subprocesses so refactors cannot silently break them.  The
slowest examples (full sweeps) are exercised by the benchmark suite
through the same code paths instead.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "pim_microbench.py",
    "compile_model.py",
    "serving_simulation.py",
    "slo_monitor.py",
    "fleet_failover.py",
    "fidelity_audit.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True,
        timeout=300)
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_have_docstrings_and_main():
    for script in EXAMPLES_DIR.glob("*.py"):
        source = script.read_text()
        assert source.lstrip().startswith(('#!/usr/bin/env python3', '"""')), \
            f"{script.name}: missing shebang/docstring"
        assert '__name__ == "__main__"' in source, \
            f"{script.name}: missing main guard"
        assert "Run:" in source, f"{script.name}: missing run instructions"


def test_example_inventory_complete():
    """The README-promised example set exists (>= 3 runnable scripts)."""
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3
