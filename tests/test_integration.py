"""Integration tests: full serving runs and cross-module consistency."""

import pytest

from repro.analysis.metrics import compare_systems
from repro.baselines.npu_pim import naive_npu_pim_device
from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice
from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.model.spec import GPT3_7B, GPT3_13B
from repro.serving.paging import PagedKvAllocator, PagedKvConfig
from repro.serving.pool import RequestPool
from repro.serving.scheduler import IterationScheduler
from repro.serving.trace import ALPACA, SHAREGPT, poisson_arrivals, warmed_batch


class TestEndToEndServing:
    """Drive the full serving stack with the NeuPIMs device as executor."""

    def _build_scheduler(self, device, requests, max_batch=32):
        pool = RequestPool()
        pool.submit_all(requests)
        allocators = [
            PagedKvAllocator(PagedKvConfig(capacity_bytes=1 << 28), GPT3_7B,
                             layers_resident=device.layers)
            for _ in range(device.channel_pool)
        ]
        return IterationScheduler(
            pool, device.executor(), max_batch_size=max_batch,
            allocators=allocators, assign_channels=device.assign_channels)

    def test_batch_drains_to_completion(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        requests = list(warmed_batch(ALPACA, 16, seed=0))
        for r in requests:
            r.status = r.status.WAITING
            r.channel = None
        remaining = sum(r.output_len - r.generated for r in requests)
        scheduler = self._build_scheduler(device, requests)
        stats = scheduler.run()
        assert stats.total_tokens == remaining
        assert len(scheduler.pool) == 0

    def test_streaming_arrivals_served(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        arrivals = poisson_arrivals(ALPACA, rate_per_kcycle=0.01,
                                    horizon_cycles=5e7, seed=1)[:24]
        scheduler = self._build_scheduler(device, arrivals, max_batch=8)
        stats = scheduler.run(max_iterations=100_000)
        assert stats.total_tokens == sum(r.output_len for r in arrivals)

    def test_throughput_decreases_with_model_size(self):
        def run(spec):
            device = NeuPimsDevice(spec, tp=4, layers_resident=4)
            batch = warmed_batch(SHAREGPT, 64, seed=2)
            result = device.iteration(batch)
            return 64 / result.latency
        assert run(GPT3_7B) > run(GPT3_13B)


class TestCrossSystemConsistency:
    def test_neupims_config_flags_reachable_from_naive(self):
        naive = naive_npu_pim_device(GPT3_7B)
        full = NeuPimsConfig.neupims()
        upgraded = naive.config.with_features(
            dual_row_buffer=True, composite_isa=True, greedy_binpack=True,
            sub_batch_interleaving=True)
        assert upgraded.dual_row_buffer == full.dual_row_buffer
        assert upgraded.composite_isa == full.composite_isa

    def test_figure12_full_ordering_both_datasets(self):
        for trace in (ALPACA, SHAREGPT):
            results = compare_systems(GPT3_7B, trace, batch_size=256, tp=4,
                                      layers_resident=2, num_batches=2)
            neupims = results["NeuPIMs"].tokens_per_second
            naive = results["NPU+PIM"].tokens_per_second
            npu = results["NPU-only"].tokens_per_second
            assert neupims > naive
            assert neupims > npu

    def test_sharegpt_gains_exceed_alpaca(self):
        """Figure 12: longer sequences give PIM more to accelerate."""
        def gain(trace):
            results = compare_systems(GPT3_7B, trace, batch_size=256, tp=4,
                                      layers_resident=2, num_batches=2)
            return (results["NeuPIMs"].tokens_per_second
                    / results["NPU-only"].tokens_per_second)
        assert gain(SHAREGPT) > gain(ALPACA)

    def test_gains_grow_with_batch_size(self):
        def gain(batch_size):
            results = compare_systems(GPT3_7B, SHAREGPT,
                                      batch_size=batch_size, tp=4,
                                      layers_resident=2, num_batches=2)
            return (results["NeuPIMs"].tokens_per_second
                    / results["NPU+PIM"].tokens_per_second)
        assert gain(512) > gain(64)

    def test_system_iteration_consistent_with_device(self):
        """A (TP=1, PP=1) system reduces to the bare device."""
        system = NeuPimsSystem(GPT3_7B, ParallelismScheme(tp=1, pp=1))
        batch = warmed_batch(SHAREGPT, 16, seed=4)
        system_latency = system.iteration_latency(batch)
        device = NeuPimsDevice(GPT3_7B, layers_resident=GPT3_7B.num_layers)
        fresh = warmed_batch(SHAREGPT, 16, seed=4)
        device_latency = device.iteration(fresh).latency
        assert system_latency == pytest.approx(device_latency, rel=0.01)


class TestCommandLevelLink:
    """The device-level MHA estimate tracks the command-level simulation."""

    def test_estimator_vs_command_level_within_factor_two(self):
        from repro.pim.engine import PimChannelEngine
        device = NeuPimsDevice(GPT3_7B)
        engine = PimChannelEngine(GPT3_7B)
        seq = 512
        estimated = device.estimator.estimate(seq)
        measured, _ = engine.run_requests([seq])
        assert 0.4 <= estimated / measured <= 2.5
