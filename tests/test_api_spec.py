"""ScenarioSpec: validation, overrides, serialization, picklability."""

import json
import pickle

import pytest

from repro.api import ScenarioSpec, ServingSpec, TrafficSpec
from repro.core.config import NeuPimsConfig
from repro.model.spec import GPT3_13B
from repro.serving.request import InferenceRequest
from repro.serving.trace import SHAREGPT


class TestValidation:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            ScenarioSpec(system="tpu")

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            ScenarioSpec(fidelity="exact")

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            ScenarioSpec(model="gpt5")

    def test_unknown_traffic_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic kind"):
            TrafficSpec(kind="batch")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            TrafficSpec(dataset="the-pile")

    def test_nonpositive_parallelism_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(tp=0)
        with pytest.raises(ValueError):
            ScenarioSpec(pp=-1)

    def test_system_engine_constraints(self):
        # pp selects the NeuPimsSystem engine: NeuPIMs-only,
        # derived layers, analytic-only.
        with pytest.raises(ValueError, match="system='neupims'"):
            ScenarioSpec(system="gpu-only", pp=2)
        with pytest.raises(ValueError, match="derived from pp"):
            ScenarioSpec(pp=2, layers_resident=4)
        with pytest.raises(ValueError, match="device-level"):
            ScenarioSpec(pp=2, fidelity="cycle")

    def test_cycle_fidelity_needs_pim_estimator(self):
        with pytest.raises(ValueError, match="no PIM estimator"):
            ScenarioSpec(system="gpu-only", fidelity="cycle")

    def test_replay_needs_requests(self):
        with pytest.raises(ValueError, match="replay_requests"):
            TrafficSpec(kind="replay")

    def test_serving_spec_validation(self):
        with pytest.raises(ValueError):
            ServingSpec(max_batch_size=0)
        with pytest.raises(ValueError):
            ServingSpec(kv_capacity_bytes=0)


class TestResolution:
    def test_model_accepts_name_or_spec(self):
        assert ScenarioSpec(model="gpt3-13b").resolve_model() is GPT3_13B
        assert ScenarioSpec(model=GPT3_13B).resolve_model() is GPT3_13B

    def test_tp_defaults_to_table3(self):
        assert ScenarioSpec(model="gpt3-7b").resolve_tp() == 4
        assert ScenarioSpec(model="gpt3-7b", tp=2).resolve_tp() == 2

    def test_naive_baseline_forces_feature_flags(self):
        config = ScenarioSpec(system="npu-pim",
                              config=NeuPimsConfig()).resolve_config()
        assert not config.dual_row_buffer
        assert not config.composite_isa
        assert not config.greedy_binpack
        assert not config.sub_batch_interleaving

    def test_auto_fidelity_rules(self):
        warmed = ScenarioSpec(traffic=TrafficSpec.warmed())
        assert warmed.resolve_fidelity() == "cycle"
        streaming = ScenarioSpec(traffic=TrafficSpec.poisson())
        assert streaming.resolve_fidelity() == "analytic"
        system_engine = ScenarioSpec(pp=2)
        assert system_engine.resolve_fidelity() == "analytic"
        no_pim = ScenarioSpec(system="gpu-only")
        assert no_pim.resolve_fidelity() == "analytic"
        explicit = ScenarioSpec(fidelity="analytic")
        assert explicit.resolve_fidelity() == "analytic"

    def test_traffic_resolves_trace_objects(self):
        assert TrafficSpec(dataset="sharegpt").resolve_dataset() is SHAREGPT
        assert TrafficSpec(dataset=SHAREGPT).resolve_dataset() is SHAREGPT

    def test_replay_from_requests_and_triples(self):
        request = InferenceRequest(request_id=0, input_len=10, output_len=4,
                                   arrival_time=5.0)
        from_requests = TrafficSpec.replay([request])
        from_triples = TrafficSpec.replay([(10, 4, 5.0)])
        assert from_requests.replay_requests == ((10, 4, 5.0),)
        assert from_requests == from_triples


class TestOverride:
    def test_routes_fields_to_nested_specs(self):
        base = ScenarioSpec()
        derived = base.override(system="transpim", batch_size=128,
                                max_batch_size=32, dual_row_buffer=False)
        assert derived.system == "transpim"
        assert derived.traffic.batch_size == 128
        assert derived.serving.max_batch_size == 32
        assert derived.config is not None
        assert not derived.config.dual_row_buffer
        # the base is untouched (frozen)
        assert base.system == "neupims"
        assert base.config is None

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            ScenarioSpec().override(batchsize=4)

    def test_nested_updates_compose_with_explicit_objects(self):
        # A routed field passed alongside an explicit nested object must
        # apply on top of that object, not be silently dropped.
        derived = ScenarioSpec().override(
            traffic=TrafficSpec.poisson(seed=9), max_requests=5,
            config=NeuPimsConfig(), greedy_binpack=False,
            serving=ServingSpec(max_batch_size=64), paged_kv=False)
        assert derived.traffic.kind == "poisson"
        assert derived.traffic.seed == 9
        assert derived.traffic.max_requests == 5
        assert not derived.config.greedy_binpack
        assert derived.serving.max_batch_size == 64
        assert not derived.serving.paged_kv

    def test_noop_override_returns_equal_spec(self):
        base = ScenarioSpec()
        assert base.override() == base


class TestSerialization:
    def round_trip(self, spec):
        encoded = json.loads(json.dumps(spec.to_dict()))
        return ScenarioSpec.from_dict(encoded)

    def test_default_round_trips(self):
        spec = ScenarioSpec()
        assert self.round_trip(spec) == spec

    def test_full_round_trips(self):
        spec = ScenarioSpec(
            model=GPT3_13B, system="npu-pim",
            config=NeuPimsConfig(dual_row_buffer=False,
                                 bandwidth_derate=0.5),
            tp=2, layers_resident=4,
            traffic=TrafficSpec.poisson(dataset=SHAREGPT,
                                        rate_per_kcycle=0.5,
                                        horizon_cycles=1e6, seed=11,
                                        max_requests=7),
            serving=ServingSpec(max_batch_size=8, paged_kv=False),
            fidelity="analytic", label="sensitivity")
        restored = self.round_trip(spec)
        assert restored == spec
        assert restored.resolve_model() == GPT3_13B
        assert restored.traffic.resolve_dataset() == SHAREGPT

    def test_replay_round_trips(self):
        spec = ScenarioSpec(
            traffic=TrafficSpec.replay([(12, 3, 0.0), (40, 9, 128.5)]),
            fidelity="analytic")
        assert self.round_trip(spec) == spec

    def test_system_engine_round_trips(self):
        spec = ScenarioSpec(tp=2, pp=2, fidelity="analytic")
        assert self.round_trip(spec) == spec

    def test_unknown_keys_rejected_on_load(self):
        # A typo'd JSON spec must fail loudly, not silently simulate the
        # defaults.
        with pytest.raises(ValueError, match="unknown ScenarioSpec"):
            ScenarioSpec.from_dict({"sytem": "gpu-only"})
        payload = ScenarioSpec().to_dict()
        payload["traffic"]["bacth_size"] = 256
        with pytest.raises(ValueError, match="unknown TrafficSpec"):
            ScenarioSpec.from_dict(payload)
        payload = ScenarioSpec(config=NeuPimsConfig()).to_dict()
        payload["config"]["dualrow"] = True
        with pytest.raises(ValueError, match="unknown NeuPimsConfig"):
            ScenarioSpec.from_dict(payload)

    def test_specs_pickle(self):
        spec = ScenarioSpec(config=NeuPimsConfig(),
                            traffic=TrafficSpec.poisson(max_requests=3))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestComponentFields:
    def round_trip(self, spec):
        encoded = json.loads(json.dumps(spec.to_dict()))
        return ScenarioSpec.from_dict(encoded)

    def test_unknown_component_names_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            ScenarioSpec(scheduler="fifo")
        with pytest.raises(ValueError, match="unknown kv"):
            ScenarioSpec(kv="slab")

    def test_builtin_only_specs_keep_their_json_shape(self):
        # The registry redesign must not disturb existing payloads: a
        # spec using only built-in component names serializes exactly as
        # it did before the component fields existed.
        payload = ScenarioSpec(fidelity="analytic").to_dict()
        for name in ("scheduler", "kv", "system_options",
                     "scheduler_options", "traffic_options",
                     "kv_options", "fidelity_options"):
            assert name not in payload
        explicit_defaults = ScenarioSpec(fidelity="analytic",
                                         scheduler="iteration",
                                         kv="paged",
                                         scheduler_options={})
        assert explicit_defaults.to_dict() == payload

    def test_option_dicts_round_trip_as_dicts(self):
        spec = ScenarioSpec(
            system_options={"channel_pool": 8},
            scheduler_options={"window": 4, "nested": {"a": [1, 2]}},
            kv_options={"block_tokens": 32},
            fidelity="analytic")
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["scheduler_options"] == {"window": 4,
                                                "nested": {"a": [1, 2]}}
        restored = self.round_trip(spec)
        assert restored == spec
        assert restored.options_for("scheduler") == {
            "window": 4, "nested": {"a": [1, 2]}}
        # And the round trip is a fixed point at the JSON level too.
        assert restored.to_dict() == spec.to_dict()

    def test_options_are_order_insensitive_and_hashable(self):
        one = ScenarioSpec(scheduler_options={"a": 1, "b": 2})
        other = ScenarioSpec(scheduler_options={"b": 2, "a": 1})
        assert one == other
        assert hash(one) == hash(other)

    def test_override_routes_component_fields(self):
        derived = ScenarioSpec().override(
            scheduler_options={"window": 3}, kv_options={"block_tokens": 8})
        assert derived.options_for("scheduler") == {"window": 3}
        assert derived.options_for("kv") == {"block_tokens": 8}
        with pytest.raises(ValueError, match="no options for"):
            derived.options_for("serving")

    def test_unknown_keys_still_rejected_with_component_fields(self):
        # Regression: from_dict must never silently ignore a bad key —
        # including around the new component fields.
        payload = ScenarioSpec(scheduler_options={"window": 3}).to_dict()
        payload["sched_options"] = {"window": 3}
        with pytest.raises(ValueError, match="sched_options"):
            ScenarioSpec.from_dict(payload)
        with pytest.raises(TypeError, match="must be a mapping"):
            ScenarioSpec.from_dict({"scheduler_options": [1, 2]})

    def test_component_fields_pickle(self):
        spec = ScenarioSpec(scheduler_options={"window": 3},
                            system_options={"channel_pool": 4})
        assert pickle.loads(pickle.dumps(spec)) == spec
