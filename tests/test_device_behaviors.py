"""Behavioral sweeps of the device model: monotonicity and consistency.

These tests pin down the qualitative surface of the latency model — the
directions in which latency and utilization must move as batch size,
sequence length, layer count, model size and feature flags vary.  They
are the guard rails for any recalibration of the fidelity knobs.
"""

import pytest

from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B, GPT3_13B, GPT3_30B
from repro.serving.request import InferenceRequest, RequestStatus

from tests.conftest import make_request


def uniform_batch(size, seq=256, start_id=0):
    return [make_request(start_id + i, input_len=seq) for i in range(size)]


def device(config=None, spec=GPT3_7B, tp=4, layers=4, **kwargs):
    return NeuPimsDevice(spec, config or NeuPimsConfig(), tp=tp,
                         layers_resident=layers, **kwargs)


class TestLatencyMonotonicity:
    @pytest.mark.parametrize("config_name,config", [
        ("neupims", NeuPimsConfig()),
        ("naive", NeuPimsConfig.naive_npu_pim()),
        ("serialized", NeuPimsConfig(sub_batch_interleaving=False)),
    ])
    def test_latency_nondecreasing_in_batch_size(self, config_name, config):
        latencies = [
            device(config).iteration(uniform_batch(size)).latency
            for size in (8, 32, 128, 512)
        ]
        for a, b in zip(latencies, latencies[1:]):
            assert b >= a * 0.999, config_name

    @pytest.mark.parametrize("seq", [64, 256, 1024])
    def test_latency_nondecreasing_in_seq_len(self, seq):
        base = device().iteration(uniform_batch(64, seq=seq)).latency
        longer = device().iteration(uniform_batch(64, seq=seq * 2)).latency
        assert longer >= base * 0.999

    def test_latency_linear_in_layers(self):
        one = device(layers=1).iteration(uniform_batch(64)).latency
        eight = device(layers=8).iteration(uniform_batch(64)).latency
        assert eight == pytest.approx(8 * one, rel=0.15)

    def test_latency_increases_with_model_size(self):
        values = []
        for spec in (GPT3_7B, GPT3_13B, GPT3_30B):
            values.append(device(spec=spec).iteration(
                uniform_batch(64)).latency)
        assert values == sorted(values)

    def test_throughput_improves_with_batch_size(self):
        """Tokens/s grows with batch even as latency grows."""
        def throughput(size):
            result = device().iteration(uniform_batch(size))
            return size / result.latency
        assert throughput(512) > throughput(64) > throughput(8)


class TestFeatureFlagDirections:
    def test_each_feature_never_hurts_at_large_batch(self):
        batch = uniform_batch(256)
        naive = device(NeuPimsConfig.naive_npu_pim()).iteration(batch).latency
        for flag in ("dual_row_buffer", "greedy_binpack",
                     "sub_batch_interleaving"):
            config = NeuPimsConfig.naive_npu_pim().with_features(**{flag: True})
            improved = device(config).iteration(
                uniform_batch(256, start_id=1000)).latency
            assert improved <= naive * 1.001, flag

    def test_full_stack_beats_any_single_feature(self):
        batch = uniform_batch(256)
        full = device(NeuPimsConfig()).iteration(batch).latency
        for flag in ("dual_row_buffer", "greedy_binpack"):
            config = NeuPimsConfig.naive_npu_pim().with_features(**{flag: True})
            single = device(config).iteration(
                uniform_batch(256, start_id=2000)).latency
            assert full < single, flag

    def test_blocked_overhead_scales_mha_only(self):
        """Blocked mode must not change the GEMM stage timing."""
        dual = device(NeuPimsConfig(sub_batch_interleaving=False))
        blocked = device(NeuPimsConfig.naive_npu_pim())
        assert dual.gemm_stage_cycles(64).total_cycles == pytest.approx(
            blocked.gemm_stage_cycles(64).total_cycles)

    def test_composite_isa_only_affects_pim_path(self):
        with_isa = device(NeuPimsConfig(composite_isa=True,
                                        sub_batch_interleaving=False))
        without = device(NeuPimsConfig(composite_isa=False,
                                       sub_batch_interleaving=False))
        batch_a = uniform_batch(64)
        batch_b = uniform_batch(64, start_id=500)
        t_with = with_isa.iteration(batch_a).latency
        t_without = without.iteration(batch_b).latency
        assert t_without > t_with
        # GEMM stages identical.
        assert with_isa.gemm_stage_cycles(64).total_cycles == \
            without.gemm_stage_cycles(64).total_cycles


class TestUtilizationConsistency:
    def test_busy_never_exceeds_latency(self):
        for size in (8, 64, 256):
            result = device().iteration(uniform_batch(size))
            for name, busy in result.busy.items():
                assert busy <= result.latency * 1.0001, name

    def test_interleaved_npu_busier_than_serialized(self):
        batch = uniform_batch(256)
        sbi = device(NeuPimsConfig(adaptive_sbi=False)).iteration(batch)
        serial = device(NeuPimsConfig(sub_batch_interleaving=False)) \
            .iteration(uniform_batch(256, start_id=3000))
        assert sbi.utilization("npu") > serial.utilization("npu")

    def test_bytes_accounting_positive_and_scaled(self):
        small = device(layers=1).iteration(uniform_batch(32))
        large = device(layers=4).iteration(uniform_batch(32, start_id=100))
        assert large.external_bytes == pytest.approx(
            4 * small.external_bytes, rel=0.01)
        assert large.internal_pim_bytes == pytest.approx(
            4 * small.internal_pim_bytes, rel=0.01)


class TestChannelPoolBehaviour:
    def test_larger_pool_reduces_mha_time(self):
        narrow = device(channel_pool=32)
        wide = device(channel_pool=128)
        batch_a = uniform_batch(256)
        batch_b = uniform_batch(256, start_id=4000)
        mha_narrow = narrow.mha_stage(
            [r for r in batch_a if narrow._ensure_assigned(batch_a) is None])
        mha_wide = wide.mha_stage(
            [r for r in batch_b if wide._ensure_assigned(batch_b) is None])
        assert mha_wide.pim_cycles < mha_narrow.pim_cycles

    def test_rehoming_out_of_range_channels(self):
        narrow = device(channel_pool=8)
        request = make_request(0, channel=100)
        narrow.iteration([request])
        assert request.channel is not None
        assert request.channel < 8

    def test_invalid_pool_raises(self):
        with pytest.raises(ValueError):
            device(channel_pool=0)


class TestRequestStateInvariance:
    def test_iteration_does_not_mutate_progress(self):
        batch = uniform_batch(16)
        before = [(r.generated, r.status) for r in batch]
        device().iteration(batch)
        after = [(r.generated, r.status) for r in batch]
        assert before == after

    def test_iteration_idempotent_given_assignment(self):
        batch = uniform_batch(32)
        d = device()
        first = d.iteration(batch).latency
        second = d.iteration(batch).latency
        assert first == pytest.approx(second)

    def test_mixed_status_requests_accepted(self):
        batch = uniform_batch(4)
        batch[0].status = RequestStatus.RUNNING
        result = device().iteration(batch)
        assert result.latency > 0
