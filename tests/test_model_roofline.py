"""Unit tests for the roofline analysis (Figure 4)."""

import pytest

from repro.model.roofline import (
    A100_ROOFLINE,
    RTX3090_ROOFLINE,
    DeviceRoofline,
    is_memory_bound,
    phase_intensity,
    roofline_points,
)
from repro.model.spec import GPT3_13B, GPT3_175B


class TestDeviceRoofline:
    def test_ridge_intensity(self):
        device = DeviceRoofline("d", peak_flops=100.0, peak_bandwidth=10.0)
        assert device.ridge_intensity == 10.0

    def test_attainable_below_ridge_is_bandwidth_limited(self):
        device = DeviceRoofline("d", peak_flops=100.0, peak_bandwidth=10.0)
        assert device.attainable(5.0) == 50.0

    def test_attainable_above_ridge_is_peak(self):
        device = DeviceRoofline("d", peak_flops=100.0, peak_bandwidth=10.0)
        assert device.attainable(50.0) == 100.0

    def test_attainable_zero_intensity(self):
        assert A100_ROOFLINE.attainable(0.0) == 0.0

    def test_time_for_takes_max(self):
        device = DeviceRoofline("d", peak_flops=100.0, peak_bandwidth=10.0)
        assert device.time_for(flops=100.0, bytes_moved=100.0) == 10.0

    def test_invalid_peaks_raise(self):
        with pytest.raises(ValueError):
            DeviceRoofline("d", peak_flops=0.0, peak_bandwidth=1.0)


class TestFigure4:
    """Reproduces the Figure 4 observations."""

    @pytest.mark.parametrize("spec", [GPT3_13B, GPT3_175B])
    def test_generation_mha_is_memory_bound(self, spec):
        points = roofline_points(spec, batch_size=32, avg_seq_len=256)
        gen_mha = next(p for p in points
                       if p.phase == "generation" and "Logit" in p.label)
        assert gen_mha.bound == "memory"
        assert gen_mha.arithmetic_intensity < 5.0

    @pytest.mark.parametrize("spec", [GPT3_13B, GPT3_175B])
    def test_summarization_is_compute_bound(self, spec):
        points = roofline_points(spec, batch_size=32, avg_seq_len=256)
        sum_gemm = next(p for p in points
                        if p.phase == "summarization" and "QKV" in p.label)
        assert sum_gemm.bound == "compute"

    def test_batched_qkv_generation_intensity_scales_with_batch(self):
        small = roofline_points(GPT3_13B, batch_size=4, avg_seq_len=256)
        large = roofline_points(GPT3_13B, batch_size=256, avg_seq_len=256)
        qkv_s = next(p for p in small
                     if p.phase == "generation" and "QKV" in p.label)
        qkv_l = next(p for p in large
                     if p.phase == "generation" and "QKV" in p.label)
        assert qkv_l.arithmetic_intensity > 10 * qkv_s.arithmetic_intensity

    def test_mha_intensity_does_not_scale_with_batch(self):
        """Batching cannot raise MHA intensity — the paper's core claim."""
        small = roofline_points(GPT3_13B, batch_size=4, avg_seq_len=256)
        large = roofline_points(GPT3_13B, batch_size=256, avg_seq_len=256)
        mha_s = next(p for p in small
                     if p.phase == "generation" and "Logit" in p.label)
        mha_l = next(p for p in large
                     if p.phase == "generation" and "Logit" in p.label)
        assert mha_l.arithmetic_intensity == pytest.approx(
            mha_s.arithmetic_intensity, rel=0.01)

    def test_generation_phase_memory_bound_end_to_end(self):
        assert is_memory_bound(GPT3_13B, 1, [256], "generation")

    def test_summarization_phase_compute_bound_with_long_prompt(self):
        assert not is_memory_bound(GPT3_13B, 8, [512] * 8, "summarization")

    def test_phase_intensity_validates_lengths(self):
        with pytest.raises(ValueError):
            phase_intensity(GPT3_13B, 2, [10], "generation")

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            roofline_points(GPT3_13B, batch_size=0, avg_seq_len=10)

    def test_rtx3090_has_lower_ridge_than_a100(self):
        assert RTX3090_ROOFLINE.ridge_intensity < A100_ROOFLINE.ridge_intensity

    def test_points_cover_both_phases_and_groups(self):
        points = roofline_points(GPT3_13B, batch_size=16, avg_seq_len=128)
        combos = {(p.phase, p.label) for p in points}
        assert len(combos) == 4
