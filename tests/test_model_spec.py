"""Unit tests for model specifications (Table 3)."""

import pytest

from repro.model.spec import (
    GPT3_7B,
    GPT3_13B,
    GPT3_30B,
    GPT3_175B,
    MODEL_REGISTRY,
    ModelSpec,
    get_model,
)


class TestTable3:
    """The four GPT-3 variants match Table 3 of the paper."""

    @pytest.mark.parametrize("spec,layers,heads,d_model,tp,pp", [
        (GPT3_7B, 32, 32, 4096, 4, 1),
        (GPT3_13B, 40, 40, 5120, 4, 1),
        (GPT3_30B, 48, 56, 7168, 4, 2),
        (GPT3_175B, 96, 96, 12288, 8, 4),
    ])
    def test_table3_configuration(self, spec, layers, heads, d_model, tp, pp):
        assert spec.num_layers == layers
        assert spec.num_heads == heads
        assert spec.d_model == d_model
        assert spec.tensor_parallel == tp
        assert spec.pipeline_parallel == pp

    def test_parameter_counts_match_names(self):
        # Decoder-stack parameters should be within ~20% of the nominal
        # size (embeddings excluded).
        assert 5.5e9 < GPT3_7B.num_parameters < 8e9
        assert 11e9 < GPT3_13B.num_parameters < 15e9
        assert 27e9 < GPT3_30B.num_parameters < 33e9
        assert 160e9 < GPT3_175B.num_parameters < 185e9


class TestModelSpec:
    def test_head_dim(self):
        assert GPT3_7B.head_dim == 128

    def test_d_ffn_is_four_x(self):
        assert GPT3_7B.d_ffn == 4 * 4096

    def test_weight_bytes_fp16(self):
        assert GPT3_7B.weight_bytes == GPT3_7B.num_parameters * 2

    def test_kv_bytes_per_token(self):
        expected = 2 * 4096 * 2 * 32
        assert GPT3_7B.kv_bytes_per_token() == expected

    def test_invalid_head_divisibility_raises(self):
        with pytest.raises(ValueError):
            ModelSpec("bad", num_layers=2, num_heads=3, d_model=100)

    def test_nonpositive_field_raises(self):
        with pytest.raises(ValueError):
            ModelSpec("bad", num_layers=0, num_heads=2, d_model=128)

    def test_heads_per_shard(self):
        assert GPT3_7B.heads_per_shard(4) == 8

    def test_heads_per_shard_indivisible_raises(self):
        with pytest.raises(ValueError):
            GPT3_7B.heads_per_shard(5)

    def test_heads_per_shard_nonpositive_raises(self):
        with pytest.raises(ValueError):
            GPT3_7B.heads_per_shard(0)

    def test_layers_per_stage_rounds_up(self):
        assert GPT3_30B.layers_per_stage(2) == 24
        assert GPT3_7B.layers_per_stage(3) == 11

    def test_layers_per_stage_invalid(self):
        with pytest.raises(ValueError):
            GPT3_7B.layers_per_stage(0)


class TestRegistry:
    def test_lookup_is_case_insensitive(self):
        assert get_model("GPT3-13B") is GPT3_13B

    def test_unknown_model_raises_with_known_list(self):
        with pytest.raises(KeyError, match="gpt3-7b"):
            get_model("nonexistent")

    def test_registry_covers_figure5_models(self):
        for name in ("gpt-neox-20b", "llama2-13b", "opt-30b", "mpt-30b"):
            assert name in MODEL_REGISTRY

    def test_specs_are_frozen(self):
        with pytest.raises(Exception):
            GPT3_7B.num_layers = 1  # type: ignore[misc]
