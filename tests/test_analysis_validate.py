"""Tests for the claim-validation suite."""

import pytest

from repro.analysis.validate import CheckResult, validate, validate_all


class TestValidate:
    def test_all_claims_pass(self):
        """The headline regression test: every reproduced claim holds."""
        results = validate_all()
        failed = [r.name for r in results if not r.passed]
        assert not failed, f"failed claims: {failed}"

    def test_results_cover_all_artifacts(self):
        names = {r.name for r in validate_all()}
        assert names == {"fig4", "fig9", "fig10", "fig12", "tab4",
                         "fig13", "fig14", "fig15", "area"}

    def test_single_check_by_name(self):
        result = validate("fig9")
        assert isinstance(result, CheckResult)
        assert result.passed

    def test_unknown_check_raises(self):
        with pytest.raises(KeyError):
            validate("fig99")

    def test_measured_strings_populated(self):
        for result in validate_all():
            assert result.measured
            assert result.claim
