"""Correctness of the perf caching layer and incremental load tracking.

The dangerous failure mode of a cache is a stale hit: a changed hardware
configuration silently served a stream/calibration computed for another.
These tests pin the key discipline — any field change in the frozen
hardware dataclasses must miss — plus value equality with the uncached
paths, invalidation, and the live-load tracker against recomputation.
"""

from dataclasses import replace

import pytest

from repro.core.binpack import (ChannelLoadTracker, channel_loads,
                                greedy_min_load_assign)
from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.dram.timing import HbmOrganization, PimTiming, TimingParams
from repro.model.spec import get_model
from repro.perf import (cache, cache_info, cached_calibrate, gemv_stream,
                        interned_stream, invalidate, memoized_estimator)
from repro.perf.calibration import ESTIMATE_CACHE
from repro.perf.streams import STREAM_CACHE
from repro.pim.engine import calibrate
from repro.pim.gemv import GemvOp, composite_stream, fine_grained_stream
from repro.serving.request import InferenceRequest

ORG = HbmOrganization()


@pytest.fixture(autouse=True)
def fresh_caches():
    invalidate()
    yield
    invalidate()


def estimator():
    spec = get_model("gpt3-7b")
    return MhaLatencyEstimator(spec=spec, org=ORG,
                               latencies=analytic_latencies())


class TestStreamInterning:
    def test_matches_uncached_builders(self):
        op = GemvOp(rows=256, cols=1024, tag="x")
        assert list(interned_stream(op, ORG, composite=True)) \
            == composite_stream(op, ORG)
        assert list(interned_stream(op, ORG, composite=False)) \
            == fine_grained_stream(op, ORG)

    def test_identical_keys_share_one_object(self):
        first = gemv_stream(512, 512, ORG)
        second = gemv_stream(512, 512, ORG)
        assert first is second
        assert cache(STREAM_CACHE).hits >= 1

    def test_mutated_organization_misses(self):
        op = GemvOp(rows=512, cols=2048, tag="x")
        base = interned_stream(op, ORG, composite=False)
        small_page = replace(ORG, page_bytes=512)
        other = interned_stream(op, small_page, composite=False)
        assert other is not base
        # Half the page size doubles the column rounds -> more waves.
        assert len(other) > len(base)
        assert list(other) == fine_grained_stream(op, small_page)

    def test_dtype_and_encoding_part_of_key(self):
        op = GemvOp(rows=512, cols=512, tag="x")
        fp16 = interned_stream(op, ORG, dtype_bytes=2)
        fp32 = interned_stream(op, ORG, dtype_bytes=4)
        fine = interned_stream(op, ORG, composite=False)
        assert fp16 is not fp32
        assert fine is not fp16

    def test_invalidate_drops_entries(self):
        gemv_stream(128, 128, ORG)
        assert cache_info()[STREAM_CACHE]["size"] >= 1
        invalidate(STREAM_CACHE)
        assert cache_info()[STREAM_CACHE]["size"] == 0

    def test_oversized_value_bypasses_cache(self):
        """A value heavier than the whole weight budget is returned
        uncached instead of flushing every resident entry."""
        from repro.perf.cache import KeyedCache
        table = KeyedCache("t", max_weight=10, weight=len)
        table.get_or_compute("a", lambda: [1] * 4)
        table.get_or_compute("b", lambda: [1] * 4)
        huge = table.get_or_compute("c", lambda: [1] * 50)
        assert len(huge) == 50
        assert "c" not in table
        assert "a" in table and "b" in table
        assert table.info()["weight"] == 8

    def test_retained_commands_stay_under_budget(self):
        """One-shot shape sweeps must not pin unbounded command tuples:
        the intern table is bounded by retained commands, not entries."""
        from repro.perf.streams import STREAM_COMMAND_BUDGET
        for i in range(40):
            gemv_stream(4096, 4096 + 512 * i, ORG, composite=False)
        info = cache_info()[STREAM_CACHE]
        assert info["weight"] <= STREAM_COMMAND_BUDGET
        assert info["size"] < 40
        # The newest entry is still resident (evictions hit the oldest).
        latest = gemv_stream(4096, 4096 + 512 * 39, ORG, composite=False)
        assert cache_info()[STREAM_CACHE]["hits"] >= 1
        assert len(latest) > 0


class TestCalibrationCache:
    def test_matches_direct_calibrate(self):
        assert cached_calibrate() == calibrate()

    def test_same_config_hits(self):
        first = cached_calibrate()
        second = cached_calibrate()
        assert second is first

    def test_mutated_pim_timing_misses(self):
        base = cached_calibrate()
        slower = replace(PimTiming(), dotprod_cycles_per_chunk=4)
        other = cached_calibrate(pim_timing=slower)
        assert other.l_tile > base.l_tile
        assert other == calibrate(pim_timing=slower)

    def test_mutated_timing_misses(self):
        base = cached_calibrate()
        # Stretch the row cycle until it dominates the wave pitch.
        slow_rows = TimingParams(tRAS=200)
        other = cached_calibrate(timing=slow_rows)
        assert other.l_tile > base.l_tile
        assert other == calibrate(timing=slow_rows)


class TestMemoizedEstimator:
    def test_values_match_inner(self):
        inner = estimator()
        memo = memoized_estimator(inner)
        for seq in (1, 77, 512, 2048):
            assert memo.estimate(seq) == inner.estimate(seq)
        assert memo.estimate_batch([64, 64, 128]) \
            == inner.estimate_batch([64, 64, 128])

    def test_repeated_seq_len_hits(self):
        memo = memoized_estimator(estimator())
        memo.estimate(333)
        before = cache(ESTIMATE_CACHE).hits
        memo.estimate(333)
        assert cache(ESTIMATE_CACHE).hits == before + 1

    def test_wrapping_is_idempotent(self):
        memo = memoized_estimator(estimator())
        assert memoized_estimator(memo) is memo

    def test_different_org_estimators_do_not_collide(self):
        spec = get_model("gpt3-7b")
        lat = analytic_latencies()
        a = memoized_estimator(MhaLatencyEstimator(spec=spec, org=ORG,
                                                   latencies=lat))
        narrow = replace(ORG, banks_per_channel=16, channels=32)
        b = memoized_estimator(MhaLatencyEstimator(
            spec=spec, org=narrow,
            latencies=analytic_latencies(org=narrow)))
        assert a.estimate(512) != b.estimate(512)

    def test_subclass_estimator_does_not_share_entries(self):
        """An overriding subclass with equal frozen inputs must not read
        the base implementation's cached values."""
        inner = estimator()

        class Doubled(MhaLatencyEstimator):
            def estimate(self, seq_len):
                return 2 * super().estimate(seq_len)

        doubled = Doubled(spec=inner.spec, org=inner.org,
                          latencies=inner.latencies)
        base_memo = memoized_estimator(inner)
        doubled_memo = memoized_estimator(doubled)
        assert base_memo.estimate(512) == inner.estimate(512)
        assert doubled_memo.estimate(512) == 2 * inner.estimate(512)

    def test_invalidate_clears_memo(self):
        memo = memoized_estimator(estimator())
        memo.estimate(100)
        invalidate(ESTIMATE_CACHE)
        assert cache_info()[ESTIMATE_CACHE]["size"] == 0
        # Still correct after invalidation.
        assert memo.estimate(100) == memo.inner.estimate(100)


def request(rid, seq, channel=None):
    req = InferenceRequest(request_id=rid, input_len=seq, output_len=8)
    req.channel = channel
    return req


class TestChannelLoadTracker:
    def test_tracks_like_recompute(self):
        est = memoized_estimator(estimator())
        tracker = ChannelLoadTracker(est, 4)
        requests = [request(i, 64 + 32 * i, channel=i % 4) for i in range(12)]
        for req in requests:
            tracker.add(req)
        assert tracker.loads == channel_loads(requests, est, 4)

    def test_update_follows_growth(self):
        est = memoized_estimator(estimator())
        tracker = ChannelLoadTracker(est, 2)
        req = request(0, 100, channel=1)
        tracker.add(req)
        req.generated = 5
        tracker.update(req)
        assert tracker.loads == channel_loads([req], est, 2)

    def test_remove_returns_to_zero(self):
        est = estimator()
        tracker = ChannelLoadTracker(est, 2)
        req = request(0, 100, channel=0)
        tracker.add(req)
        tracker.remove(req)
        assert tracker.loads == [0.0, 0.0]
        assert len(tracker) == 0

    def test_greedy_with_tracker_loads_matches_existing(self):
        est = estimator()
        existing = [request(i, 256, channel=i % 3) for i in range(6)]
        new_a = [request(10 + i, 512 - 64 * i) for i in range(4)]
        new_b = [request(10 + i, 512 - 64 * i) for i in range(4)]

        baseline = greedy_min_load_assign(new_a, est, 3, existing=existing)

        tracker = ChannelLoadTracker(est, 3)
        for req in existing:
            tracker.add(req)
        tracked = greedy_min_load_assign(new_b, est, 3,
                                         initial_loads=tracker.loads)
        assert tracked == baseline

    def test_update_migrates_rehomed_request(self):
        """A tracked request whose channel was reassigned moves its
        contribution instead of charging the old channel forever."""
        est = estimator()
        tracker = ChannelLoadTracker(est, 3)
        req = request(0, 100, channel=0)
        tracker.add(req)
        req.channel = 2
        tracker.update(req)
        assert tracker.loads == channel_loads([req], est, 3)

    def test_update_adopts_untracked_running_request(self):
        """Pre-warmed requests (RUNNING at submit, never admitted) are
        adopted by the per-iteration update refresh."""
        est = estimator()
        tracker = ChannelLoadTracker(est, 2)
        req = request(0, 100, channel=1)
        tracker.update(req)
        assert tracker.loads == channel_loads([req], est, 2)
        # Without a channel there is nothing to adopt yet.
        tracker.update(request(1, 100, channel=None))
        assert len(tracker) == 1

    def test_add_requires_valid_channel(self):
        tracker = ChannelLoadTracker(estimator(), 2)
        with pytest.raises(ValueError):
            tracker.add(request(0, 64, channel=None))
        with pytest.raises(ValueError):
            tracker.add(request(1, 64, channel=7))

    def test_double_add_rejected(self):
        tracker = ChannelLoadTracker(estimator(), 2)
        req = request(0, 64, channel=0)
        tracker.add(req)
        with pytest.raises(ValueError):
            tracker.add(req)
