"""Tests for the calibration-sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    DEFAULT_KNOBS,
    KnobRange,
    SensitivityPoint,
    conclusion_robust,
    measure_speedup,
    sensitivity_sweep,
    tornado_table,
)
from repro.core.config import NeuPimsConfig
from repro.model.spec import GPT3_7B
from repro.serving.trace import ALPACA, SHAREGPT


class TestKnobs:
    def test_default_knobs_cover_design_parameters(self):
        names = {k.name for k in DEFAULT_KNOBS}
        assert names == {"bus_bytes_per_cycle", "dotprod_cycles_per_chunk",
                         "blocked_mode_overhead", "bandwidth_derate"}

    def test_knob_application_produces_new_config(self):
        base = NeuPimsConfig()
        for knob in DEFAULT_KNOBS:
            perturbed = knob.apply(base, 2.0)
            assert isinstance(perturbed, NeuPimsConfig)
            assert perturbed is not base

    def test_unit_scale_is_identity_for_bus(self):
        base = NeuPimsConfig()
        knob = next(k for k in DEFAULT_KNOBS
                    if k.name == "bus_bytes_per_cycle")
        assert knob.apply(base, 1.0).org.bus_bytes_per_cycle == \
            base.org.bus_bytes_per_cycle

    def test_derate_clamped_to_valid_range(self):
        base = NeuPimsConfig()
        knob = next(k for k in DEFAULT_KNOBS if k.name == "bandwidth_derate")
        assert knob.apply(base, 10.0).bandwidth_derate <= 1.0
        assert knob.apply(base, 0.01).bandwidth_derate >= 0.1


class TestSweep:
    def test_speedup_positive_everywhere(self):
        points = sensitivity_sweep(batch_size=64, layers=2,
                                   knobs=DEFAULT_KNOBS[:2])
        assert points
        assert all(p.speedup_vs_naive > 0 for p in points)

    def test_conclusion_robust_on_default_point(self):
        points = sensitivity_sweep(batch_size=256, layers=2,
                                   knobs=DEFAULT_KNOBS[:1])
        assert conclusion_robust(points)

    def test_measure_speedup_above_one_at_large_batch(self):
        speedup = measure_speedup(NeuPimsConfig(), GPT3_7B, SHAREGPT,
                                  batch_size=256, tp=4, layers=2)
        assert speedup > 1.0

    def test_sharegpt_speedup_exceeds_alpaca(self):
        share = measure_speedup(NeuPimsConfig(), GPT3_7B, SHAREGPT,
                                batch_size=256, tp=4, layers=2)
        alpaca = measure_speedup(NeuPimsConfig(), GPT3_7B, ALPACA,
                                 batch_size=256, tp=4, layers=2)
        assert share > alpaca

    def test_tornado_table_groups_by_knob(self):
        points = [
            SensitivityPoint("a", 0.5, 1.5),
            SensitivityPoint("a", 2.0, 2.5),
            SensitivityPoint("b", 1.0, 2.0),
        ]
        table = tornado_table(points)
        assert table == {"a": {0.5: 1.5, 2.0: 2.5}, "b": {1.0: 2.0}}

    def test_conclusion_not_robust_below_threshold(self):
        points = [SensitivityPoint("a", 1.0, 0.9)]
        assert not conclusion_robust(points)

    def test_custom_knob(self):
        knob = KnobRange(
            "fine_grained_overhead",
            lambda c, s: NeuPimsConfig(
                fine_grained_overhead=c.fine_grained_overhead * s),
            scales=(1.0, 3.0))
        points = sensitivity_sweep(batch_size=64, layers=2, knobs=[knob])
        assert len(points) == 2
