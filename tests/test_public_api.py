"""Public API hygiene: exports resolve and everything is documented.

Enforces the documentation deliverable mechanically: every public module,
class, function and method in the package carries a docstring, and every
name listed in an ``__all__`` actually exists.
"""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro", "repro.sim", "repro.model", "repro.dram", "repro.pim",
    "repro.npu", "repro.serving", "repro.core", "repro.baselines",
    "repro.compiler", "repro.analysis", "repro.perf", "repro.api",
    "repro.registry", "repro.faults", "repro.cluster", "repro.counters",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(
                    f"{package_name}.{info.name}")


class TestExports:
    def test_all_entries_resolve(self):
        for module in iter_modules():
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), \
                    f"{module.__name__}.__all__ lists missing name {name!r}"

    def test_top_level_api_importable(self):
        from repro import (  # noqa: F401
            InferenceRequest,
            MhaLatencyEstimator,
            NeuPimsConfig,
            NeuPimsDevice,
            NeuPimsSystem,
            ParallelismScheme,
            get_dataset,
            get_model,
            warmed_batch,
        )

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    def test_every_module_documented(self):
        for module in iter_modules():
            assert module.__doc__, f"{module.__name__} missing docstring"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_"):
                        continue
                    if inspect.isfunction(method) and \
                            not inspect.getdoc(method):
                        missing.append(
                            f"{module.__name__}.{name}.{method_name}")
        assert not missing, f"undocumented public methods: {missing}"
