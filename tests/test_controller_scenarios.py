"""Extended command-level scenarios for the memory controller.

Covers interaction patterns beyond the basic unit tests: sustained mixed
workloads, refresh cadence under load, multi-GEMV pipelines, activation
replay correctness, and C/A-bus accounting invariants.
"""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType, ca_bus_cycles
from repro.dram.controller import ControllerConfig, MemoryController


def controller(dual=True, header_aware=True, refresh=True,
               pim_priority=True):
    channel = Channel(0, dual_row_buffer=dual)
    return MemoryController(channel, ControllerConfig(
        pim_priority=pim_priority, header_aware_refresh=header_aware,
        refresh_enabled=refresh))


def reads(bank, count, stride_rows=True):
    commands = []
    for i in range(count):
        commands.append(Command(CommandType.ACT, bank=bank,
                                row=i if stride_rows else 0))
        commands.append(Command(CommandType.RD, bank=bank))
        commands.append(Command(CommandType.PRE, bank=bank))
    return commands


def gemv(k=16, tag=""):
    return [
        Command(CommandType.PIM_HEADER, k=k, meta=tag),
        Command(CommandType.PIM_GWRITE, bank=0, row=50_000, meta=tag),
        Command(CommandType.PIM_GEMV, k=k, meta=tag),
        Command(CommandType.PIM_PRECHARGE, meta=tag),
    ]


class TestSustainedMixedWorkload:
    def test_long_run_stays_legal(self):
        """Thousands of interleaved commands execute without hazards."""
        ctrl = controller()
        for wave in range(10):
            ctrl.enqueue_pim(gemv(k=32, tag=f"g{wave}"))
        for bank in range(8, 16):
            ctrl.enqueue_mem(reads(bank, 40))
        records = ctrl.drain()
        assert len(records) >= 10 * 4 + 8 * 40 * 3

    def test_multiple_gemvs_serialize_on_pim(self):
        ctrl = controller(refresh=False)
        ctrl.enqueue_pim(gemv(k=16, tag="a") + gemv(k=16, tag="b"))
        records = ctrl.drain()
        gemvs = [r for r in records
                 if r.command.ctype is CommandType.PIM_GEMV]
        assert len(gemvs) == 2
        assert gemvs[1].issue_time >= gemvs[0].complete_time

    def test_mem_throughput_preserved_alongside_pim(self):
        """With dual row buffers, adding a PIM GEMV barely delays the
        memory stream (the core §5.1 claim)."""
        def last_read(with_pim):
            ctrl = controller(refresh=False)
            if with_pim:
                ctrl.enqueue_pim(gemv(k=64))
            ctrl.enqueue_mem(reads(8, 30))
            records = ctrl.drain()
            return max(r.complete_time for r in records
                       if r.command.ctype is CommandType.RD)
        assert last_read(True) < last_read(False) * 1.25

    def test_bus_busy_equals_sum_of_command_cycles(self):
        ctrl = controller(refresh=False)
        ctrl.enqueue_pim(gemv(k=4))
        ctrl.enqueue_mem(reads(8, 5))
        records = ctrl.drain()
        expected = sum(ca_bus_cycles(r.command.ctype) for r in records)
        assert ctrl.channel.ca_busy_cycles == expected

    def test_records_sorted_by_bus_slot(self):
        ctrl = controller(refresh=False)
        ctrl.enqueue_pim(gemv(k=8))
        ctrl.enqueue_mem(reads(8, 10))
        starts = [r.issue_time for r in ctrl.drain()]
        assert starts == sorted(starts)


class TestRefreshCadence:
    def test_refresh_rate_tracks_trefi(self):
        ctrl = controller()
        ctrl.enqueue_mem(reads(0, 400))
        ctrl.drain()
        elapsed = ctrl.finish_time
        expected = elapsed / ctrl.channel.timing.tREFI
        issued = ctrl.stats.get("refresh.issued")
        assert issued == pytest.approx(expected, abs=2)

    def test_act_replay_restores_open_rows(self):
        """Reads queued across a refresh still succeed (row replayed)."""
        ctrl = controller()
        commands = [Command(CommandType.ACT, bank=0, row=7)]
        commands += [Command(CommandType.RD, bank=0) for _ in range(2000)]
        commands.append(Command(CommandType.PRE, bank=0))
        ctrl.enqueue_mem(commands)
        records = ctrl.drain()
        assert ctrl.stats.get("refresh.issued") >= 1
        assert ctrl.stats.get("refresh.act_replays") >= 1
        read_count = sum(1 for r in records
                         if r.command.ctype is CommandType.RD)
        assert read_count == 2000

    def test_header_aware_mode_never_interrupts(self):
        ctrl = controller(header_aware=True)
        for i in range(20):
            ctrl.enqueue_pim(gemv(k=150, tag=f"g{i}"))
        ctrl.drain()
        assert ctrl.stats.get("refresh.gemv_interrupted") == 0

    def test_fine_grained_without_headers_still_progresses(self):
        from repro.pim.gemv import GemvOp, fine_grained_stream
        ctrl = controller(header_aware=False)
        op = GemvOp(rows=32 * 40, cols=512)
        ctrl.enqueue_pim(fine_grained_stream(op, ctrl.channel.org))
        records = ctrl.drain()
        dotprods = sum(1 for r in records
                       if r.command.ctype is CommandType.PIM_DOTPRODUCT)
        assert dotprods == op.waves(ctrl.channel.org)


class TestPolicyEdgeCases:
    def test_mem_priority_still_completes_pim(self):
        ctrl = controller(pim_priority=False, refresh=False)
        ctrl.enqueue_pim(gemv(k=8))
        ctrl.enqueue_mem(reads(8, 5))
        records = ctrl.drain()
        assert any(r.command.ctype is CommandType.PIM_GEMV for r in records)

    def test_blocked_mode_strictly_orders_flows(self):
        ctrl = controller(dual=False, refresh=False)
        ctrl.enqueue_mem(reads(4, 3))
        ctrl.enqueue_pim(gemv(k=8))
        records = ctrl.drain()
        last_pim = max(r.complete_time for r in records if r.command.is_pim)
        first_read = min(r.issue_time for r in records
                         if r.command.ctype is CommandType.RD)
        assert first_read >= last_pim - 1e-9

    def test_drain_is_idempotent(self):
        ctrl = controller(refresh=False)
        ctrl.enqueue_pim(gemv(k=2))
        first = len(ctrl.drain())
        second = len(ctrl.drain())
        assert second == first  # no new records
