"""Unit tests for the operator dependency graph."""

import pytest

from repro.model.graph import OperatorGraph, build_decoder_graph
from repro.model.layers import Operator, OpKind
from repro.model.spec import GPT3_7B


def _op(name: str) -> Operator:
    return Operator(name, OpKind.GEMM, flops=1, bytes_moved=1)


class TestOperatorGraph:
    def test_add_and_ready(self):
        graph = OperatorGraph()
        a = graph.add(_op("a"), layer=0)
        b = graph.add(_op("b"), layer=0, deps=[a])
        assert graph.ready(set()) == [a]
        assert graph.ready({a}) == [b]

    def test_unknown_dependency_raises(self):
        graph = OperatorGraph()
        with pytest.raises(KeyError):
            graph.add(_op("x"), layer=0, deps=[99])

    def test_topological_order_is_valid(self):
        graph = OperatorGraph()
        a = graph.add(_op("a"), layer=0)
        b = graph.add(_op("b"), layer=0, deps=[a])
        c = graph.add(_op("c"), layer=0, deps=[a])
        d = graph.add(_op("d"), layer=0, deps=[b, c])
        order = graph.topological_order()
        assert order.index(a) < order.index(b) < order.index(d)
        assert order.index(a) < order.index(c) < order.index(d)

    def test_len_counts_nodes(self):
        graph = OperatorGraph()
        graph.add(_op("a"), layer=0)
        assert len(graph) == 1


class TestDecoderGraph:
    def test_single_layer_structure(self):
        graph = build_decoder_graph(GPT3_7B, [10, 20], num_layers=1)
        # qkv + 2*(logit, softmax, attend) + projection + ffn1 + ffn2
        assert len(graph) == 1 + 6 + 3

    def test_layers_chain_through_ffn2(self):
        graph = build_decoder_graph(GPT3_7B, [10], num_layers=2)
        order = graph.topological_order()
        by_layer0 = [nid for nid in order if graph.nodes[nid].layer == 0]
        by_layer1 = [nid for nid in order if graph.nodes[nid].layer == 1]
        assert max(order.index(n) for n in by_layer0) < min(
            order.index(n) for n in by_layer1)

    def test_mha_depends_on_qkv(self):
        graph = build_decoder_graph(GPT3_7B, [10], num_layers=1)
        logit = next(nid for nid, n in graph.nodes.items()
                     if n.op.name.startswith("logit"))
        qkv = next(nid for nid, n in graph.nodes.items()
                   if n.op.name == "qkv_generation")
        assert qkv in graph.nodes[logit].predecessors

    def test_projection_depends_on_all_attends(self):
        graph = build_decoder_graph(GPT3_7B, [10, 20, 30], num_layers=1)
        proj = next(nid for nid, n in graph.nodes.items()
                    if n.op.name == "projection")
        attends = {nid for nid, n in graph.nodes.items()
                   if n.op.name.startswith("attend")}
        assert attends <= graph.nodes[proj].predecessors

    def test_softmax_between_logit_and_attend(self):
        graph = build_decoder_graph(GPT3_7B, [10], num_layers=1)
        order = graph.topological_order()
        names = [graph.nodes[nid].op.name for nid in order]
        assert names.index("logit[0]") < names.index("softmax[0]") \
            < names.index("attend[0]")

    def test_per_request_chains_are_independent(self):
        """Different requests' MHA ops have no cross dependencies — the
        head/request parallelism sub-batch interleaving exploits."""
        graph = build_decoder_graph(GPT3_7B, [10, 20], num_layers=1)
        logit0 = next(nid for nid, n in graph.nodes.items()
                      if n.op.name == "logit[0]")
        attend1 = next(nid for nid, n in graph.nodes.items()
                       if n.op.name == "attend[1]")
        assert logit0 not in graph.nodes[attend1].predecessors

    def test_summarization_graph_builds(self):
        graph = build_decoder_graph(GPT3_7B, [10, 20], num_layers=1,
                                    phase="summarization")
        assert len(graph) == 1 + 2 + 3

    def test_default_layer_count_is_spec(self):
        graph = build_decoder_graph(GPT3_7B, [4], num_layers=None)
        layers = {n.layer for n in graph.nodes.values()}
        assert len(layers) == GPT3_7B.num_layers

    def test_invalid_layer_count_raises(self):
        with pytest.raises(ValueError):
            build_decoder_graph(GPT3_7B, [4], num_layers=0)
