"""Equivalence of the batch-replay fast path with the per-command drain.

``MemoryController.drain_fast`` must be *observationally identical* to
``drain`` — finish time, refresh counts, C/A-bus busy cycles and every
per-command-type stat counter — on every scenario the controller handles:
refresh hoisting, GEMV interruption, activation replay after refresh, and
the homogeneous run shapes it accelerates (fine-grained wave trains,
composite streams, GWRITE and RD/WR bursts).
"""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.timing import HbmOrganization
from repro.pim.gemv import GemvOp, composite_stream, fine_grained_stream

ORG = HbmOrganization()


def build(dual=True, **cfg):
    channel = Channel(0, dual_row_buffer=dual)
    return MemoryController(channel, ControllerConfig(**cfg))


def drain_both(stream, mem=False, dual=True, **cfg):
    slow = build(dual=dual, **cfg)
    fast = build(dual=dual, **cfg)
    for ctrl in (slow, fast):
        (ctrl.enqueue_mem if mem else ctrl.enqueue_pim)(list(stream))
    slow.drain()
    fast.drain_fast()
    return slow, fast


def assert_equivalent(slow, fast):
    assert fast.finish_time == slow.finish_time
    assert fast.stats.as_dict() == slow.stats.as_dict()
    assert fast.channel.ca_busy_cycles == slow.channel.ca_busy_cycles


def fine_stream(rows=2048, cols=2048):
    return fine_grained_stream(GemvOp(rows=rows, cols=cols, tag="t"), ORG)


def multi_composite(count=60, k_rows=512):
    stream = []
    for i in range(count):
        stream += composite_stream(
            GemvOp(rows=k_rows, cols=512, tag=f"g{i}"), ORG)
    return stream


class TestActReplayScenario:
    """Fine-grained waves crossing refreshes (ACT replay after REF)."""

    def test_fine_grained_with_refresh_matches(self):
        slow, fast = drain_both(fine_stream(), header_aware_refresh=False)
        assert slow.stats.get("refresh.issued") > 0
        assert slow.stats.get("refresh.act_replays") > 0
        assert_equivalent(slow, fast)

    def test_fine_grained_replays_most_commands(self):
        stream = fine_stream(4096, 4096)
        _, fast = drain_both(stream, header_aware_refresh=False)
        assert fast.replay.runs >= 1
        assert fast.replay.replayed > 0.9 * len(stream)

    def test_mem_act_replay_after_refresh(self):
        commands = [Command(CommandType.ACT, bank=0, row=7)]
        commands += [Command(CommandType.RD, bank=0) for _ in range(2000)]
        commands.append(Command(CommandType.PRE, bank=0))
        slow, fast = drain_both(commands, mem=True)
        assert slow.stats.get("refresh.act_replays") > 0
        assert_equivalent(slow, fast)


class TestRefreshHoistScenario:
    """Header-aware refresh hoisting (composite ISA)."""

    def test_hoisted_refreshes_match(self):
        slow, fast = drain_both(multi_composite(), header_aware_refresh=True)
        assert slow.stats.get("refresh.hoisted") > 0
        assert_equivalent(slow, fast)

    def test_hoist_counts_preserved_across_replay(self):
        slow, fast = drain_both(multi_composite(count=120))
        assert fast.replay.replayed > 0
        assert fast.stats.get("refresh.hoisted") \
            == slow.stats.get("refresh.hoisted")


class TestGemvInterruptScenario:
    """Baseline mode: refresh preempts in-flight GEMVs."""

    def test_interrupted_gemvs_match(self):
        slow, fast = drain_both(multi_composite(count=120, k_rows=2048),
                                header_aware_refresh=False)
        assert slow.stats.get("refresh.gemv_interrupted") > 0
        assert_equivalent(slow, fast)


class TestRunShapes:
    """Homogeneous run shapes the replay engine recognizes."""

    def test_gwrite_burst(self):
        stream = [Command(CommandType.PIM_GWRITE, bank=0, row=9)
                  for _ in range(300)]
        slow, fast = drain_both(stream, refresh_enabled=False)
        assert fast.replay.replayed > 200
        assert_equivalent(slow, fast)

    def test_act_rd_pre_run(self):
        commands = []
        for row in range(400):
            commands += [Command(CommandType.ACT, bank=2, row=row),
                         Command(CommandType.RD, bank=2),
                         Command(CommandType.PRE, bank=2)]
        slow, fast = drain_both(commands, mem=True)
        assert fast.replay.replayed > 0
        assert_equivalent(slow, fast)

    def test_write_run(self):
        commands = [Command(CommandType.ACT, bank=1, row=3)]
        commands += [Command(CommandType.WR, bank=1) for _ in range(1500)]
        commands.append(Command(CommandType.PRE, bank=1))
        slow, fast = drain_both(commands, mem=True)
        assert_equivalent(slow, fast)

    def test_no_refresh_wave_train_is_one_run(self):
        stream = fine_stream(4096, 2048)
        _, fast = drain_both(stream, refresh_enabled=False)
        assert fast.replay.replayed > 0.95 * len(stream)

    def test_blocked_mode_fine_grained(self):
        slow, fast = drain_both(fine_stream(1024, 1024), dual=False,
                                header_aware_refresh=False)
        assert_equivalent(slow, fast)


class TestEdgeCases:
    def test_mixed_queues_fall_back_to_stepping(self):
        def mixed():
            ctrl = build(refresh_enabled=False)
            ctrl.enqueue_pim(multi_composite(count=5))
            for bank in range(4):
                for row in range(10):
                    ctrl.enqueue_mem([
                        Command(CommandType.ACT, bank=bank, row=row),
                        Command(CommandType.RD, bank=bank),
                        Command(CommandType.PRE, bank=bank)])
            return ctrl
        slow, fast = mixed(), mixed()
        slow.drain()
        fast.drain_fast()
        assert_equivalent(slow, fast)

    def test_empty_queues(self):
        ctrl = build()
        assert ctrl.drain_fast() == []
        assert ctrl.finish_time == 0.0

    def test_drain_fast_idempotent(self):
        ctrl = build(refresh_enabled=False)
        ctrl.enqueue_pim(multi_composite(count=3))
        first = ctrl.drain_fast()
        finish = ctrl.finish_time
        second = ctrl.drain_fast()
        assert second == first
        assert ctrl.finish_time == finish

    def test_zero_hunt_budget_degenerates_to_drain(self):
        stream = fine_stream(512, 512)
        slow = build(header_aware_refresh=False)
        fast = build(header_aware_refresh=False)
        slow.enqueue_pim(list(stream))
        fast.enqueue_pim(list(stream))
        slow.drain()
        fast.drain_fast(hunt_budget=0)
        assert fast.replay.replayed == 0
        assert len(fast.records) == len(slow.records)
        assert_equivalent(slow, fast)

    def test_records_are_abridged_not_wrong(self):
        """Stepped records of the fast drain are a subsequence of the
        slow drain's records with identical issue times."""
        stream = fine_stream(1024, 512)
        slow, fast = drain_both(stream, refresh_enabled=False)
        slow_times = {(r.command.ctype, r.issue_time) for r in slow.records}
        for record in fast.records:
            assert (record.command.ctype, record.issue_time) in slow_times

    @pytest.mark.parametrize("seq_len", [128, 640, 1333])
    def test_serving_style_streams(self, seq_len):
        """Logit+attend per request, several requests back to back."""
        stream = []
        for i in range(30):
            stream += composite_stream(
                GemvOp(rows=seq_len * 8, cols=128, tag=f"logit[{i}]"), ORG)
            stream += composite_stream(
                GemvOp(rows=128 * 8, cols=seq_len, tag=f"attend[{i}]"), ORG)
        slow, fast = drain_both(stream)
        assert_equivalent(slow, fast)
