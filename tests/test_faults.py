"""Fault plans, the injector, registry wiring and spec round-trips.

The determinism contract is the backbone: a plan is a pure function of
``(seed, options)`` — identical in this process, in a pickled sweep
worker, and across repeated construction — and the injector's queries
are pure in simulated time except for the explicit activation cursor.
"""

import pickle

import pytest

from repro.api import ScenarioSpec, ServingSpec, TrafficSpec
from repro.faults import (
    ChannelDegrade,
    ChannelStall,
    FaultInjector,
    FaultPlan,
    KvFault,
    RequestAbort,
    make_fault_plan,
)
from repro.registry import REGISTRY, get_component
from repro.serving.request import InferenceRequest, RequestStatus


def running(rid, channel):
    return InferenceRequest(rid, input_len=8, output_len=8,
                            status=RequestStatus.RUNNING, channel=channel)


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        a = make_fault_plan(7, channels=4, aborts=2)
        b = make_fault_plan(7, channels=4, aborts=2)
        assert a == b
        assert len(a) == 5  # 1 degrade + 1 stall + 1 kv + 2 aborts

    def test_different_seeds_differ(self):
        assert make_fault_plan(1, channels=4) != make_fault_plan(2,
                                                                 channels=4)

    def test_plan_survives_pickle(self):
        plan = make_fault_plan(3, channels=8, aborts=1)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_faults_sorted_by_start(self):
        plan = make_fault_plan(5, channels=4, degrades=3, stalls=3,
                               kv_faults=3, aborts=3)
        starts = [fault.start for fault in plan.faults]
        assert starts == sorted(starts)

    def test_windows_inside_horizon_geometry(self):
        plan = make_fault_plan(9, channels=4, horizon=1e6, degrades=4,
                               stalls=4, kv_faults=4)
        for fault in plan.faults:
            assert 0.0 <= fault.start <= 0.70 * 1e6
            assert fault.duration <= 0.25 * 1e6

    def test_counts_and_channel_bounds(self):
        plan = make_fault_plan(11, channels=2, degrades=2, stalls=0,
                               kv_faults=0, aborts=0)
        assert len(plan) == 2
        assert all(isinstance(f, ChannelDegrade) for f in plan.faults)
        assert all(0 <= f.channel < 2 for f in plan.faults)
        assert all(f.factor >= 1.25 for f in plan.faults)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_fault_plan(0, channels=0)
        with pytest.raises(ValueError):
            make_fault_plan(0, channels=4, horizon=0.0)
        with pytest.raises(ValueError):
            make_fault_plan(0, channels=4, degrades=-1)
        with pytest.raises(ValueError):
            ChannelDegrade(start=0.0, duration=1.0, factor=0.5)
        with pytest.raises(ValueError):
            ChannelStall(start=0.0, duration=1.0, stall_cycles=-1.0)
        with pytest.raises(ValueError):
            KvFault(start=-1.0, duration=1.0)

    def test_window_is_half_open(self):
        fault = KvFault(start=10.0, duration=5.0)
        assert not fault.active(9.999)
        assert fault.active(10.0)
        assert fault.active(14.999)
        assert not fault.active(15.0)
        assert fault.describe() == "KvFault"


class TestFaultInjector:
    def test_poll_fires_each_fault_once_in_order(self):
        plan = FaultPlan(seed=0, faults=(
            KvFault(start=20.0, duration=5.0),
            ChannelDegrade(start=10.0, duration=5.0),
        ))
        injector = FaultInjector(plan)
        assert injector.poll(5.0) == []
        fired = injector.poll(15.0)
        assert len(fired) == 1 and isinstance(fired[0], ChannelDegrade)
        fired = injector.poll(25.0)
        assert len(fired) == 1 and isinstance(fired[0], KvFault)
        assert injector.poll(100.0) == []

    def test_latency_penalty_degrade_and_stall_compose(self):
        plan = FaultPlan(seed=0, faults=(
            ChannelDegrade(start=0.0, duration=100.0, channel=0, factor=2.0),
            ChannelStall(start=0.0, duration=100.0, channel=1,
                         stall_cycles=50.0),
        ))
        injector = FaultInjector(plan)
        batch = [running(0, channel=0), running(1, channel=1)]
        # Derate doubles the iteration, the stall adds on top.
        assert injector.latency_penalty(10.0, 1000.0, batch) == \
            pytest.approx(1000.0 + 50.0)
        # Outside every window: no penalty.
        assert injector.latency_penalty(200.0, 1000.0, batch) == 0.0
        # Batch not touching the faulty channels: no penalty.
        other = [running(2, channel=3)]
        assert injector.latency_penalty(10.0, 1000.0, other) == 0.0

    def test_degrade_factors_compose_as_max(self):
        plan = FaultPlan(seed=0, faults=(
            ChannelDegrade(start=0.0, duration=10.0, channel=0, factor=1.5),
            ChannelDegrade(start=0.0, duration=10.0, channel=0, factor=2.0),
        ))
        injector = FaultInjector(plan)
        penalty = injector.latency_penalty(5.0, 100.0, [running(0, 0)])
        assert penalty == pytest.approx(100.0)  # max factor 2.0, not 3.5

    def test_kv_blocked_matches_channel_and_window(self):
        plan = FaultPlan(seed=0, faults=(
            KvFault(start=10.0, duration=10.0, channel=2),))
        injector = FaultInjector(plan)
        assert injector.kv_blocked(15.0, 2)
        assert not injector.kv_blocked(15.0, 1)
        assert not injector.kv_blocked(25.0, 2)

    def test_aborts_queue_until_batch_running(self):
        plan = FaultPlan(seed=0, faults=(
            RequestAbort(start=5.0, duration=0.0, ordinal=1),))
        injector = FaultInjector(plan)
        injector.poll(6.0)
        # No running requests yet: the abort stays queued.
        assert injector.take_aborts(6.0, []) == []
        batch = [running(10, 0), running(11, 0), running(12, 0)]
        victims = injector.take_aborts(7.0, batch)
        assert [v.request_id for v in victims] == [11]
        # Consumed: nothing left.
        assert injector.take_aborts(8.0, batch) == []

    def test_duplicate_abort_victims_deduplicated(self):
        plan = FaultPlan(seed=0, faults=(
            RequestAbort(start=1.0, duration=0.0, ordinal=0),
            RequestAbort(start=2.0, duration=0.0, ordinal=2),))
        injector = FaultInjector(plan)
        injector.poll(3.0)
        batch = [running(5, 0), running(6, 0)]
        victims = injector.take_aborts(3.0, batch)
        assert [v.request_id for v in victims] == [5]  # 2 % 2 == 0 too


class TestRegistryWiring:
    def test_none_returns_no_injector(self):
        assert REGISTRY.create("faults", "none", None, 8) is None

    def test_none_rejects_options(self):
        with pytest.raises(ValueError, match="unknown faults option"):
            REGISTRY.create("faults", "none", None, 8, seed=1)

    def test_seeded_builds_deterministic_injector(self):
        a = REGISTRY.create("faults", "seeded", None, 8, seed=4, aborts=1)
        b = REGISTRY.create("faults", "seeded", None, 8, seed=4, aborts=1)
        assert isinstance(a, FaultInjector)
        assert a.plan == b.plan

    def test_faults_kind_listed(self):
        assert "none" in REGISTRY.names("faults")
        assert "seeded" in REGISTRY.names("faults")
        assert get_component("faults", "seeded").option_names

    def test_unknown_faults_component_lists_alternatives(self):
        with pytest.raises(ValueError) as err:
            get_component("faults", "byzantine")
        assert "seeded" in str(err.value)


class TestSpecRoundTrip:
    def _spec(self):
        return ScenarioSpec(
            model="gpt3-7b", fidelity="analytic", layers_resident=2,
            traffic=TrafficSpec.warmed(batch_size=4),
            serving=ServingSpec(max_batch_size=4, deadline_cycles=1e7,
                                max_retries=2, retry_backoff_cycles=1e5,
                                shed_wait_cycles=2e7),
            faults="seeded", faults_options={"seed": 3, "aborts": 1})

    def test_round_trip_preserves_faults_fields(self):
        spec = self._spec()
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.faults == "seeded"
        assert dict(clone.faults_options) == {"seed": 3, "aborts": 1}
        assert clone.serving.deadline_cycles == 1e7
        assert clone.serving.max_retries == 2

    def test_default_spec_payload_omits_faults_keys(self):
        payload = ScenarioSpec(model="gpt3-7b", fidelity="analytic",
                               layers_resident=2).to_dict()
        assert "faults" not in payload
        assert "faults_options" not in payload
        serving = payload.get("serving", {})
        for key in ("deadline_cycles", "max_retries",
                    "retry_backoff_cycles", "shed_wait_cycles"):
            assert key not in serving

    def test_serving_resilience_validation(self):
        with pytest.raises(ValueError):
            ServingSpec(deadline_cycles=0.0)
        with pytest.raises(ValueError):
            ServingSpec(max_retries=-1)
        with pytest.raises(ValueError):
            ServingSpec(retry_backoff_cycles=-1.0)
        with pytest.raises(ValueError):
            ServingSpec(shed_wait_cycles=0.0)

    def test_unknown_faults_name_rejected_at_spec_time(self):
        with pytest.raises(ValueError):
            ScenarioSpec(model="gpt3-7b", fidelity="analytic",
                         layers_resident=2, faults="chaos-monkey")
