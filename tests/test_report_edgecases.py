"""Empty-row and limit edge cases for the two table renderers."""

import pytest

from repro.analysis.report import format_table
from repro.serving.pool import RequestPool
from repro.serving.request import InferenceRequest


class TestReportFormatTable:
    def test_empty_rows_render_header_only(self):
        table = format_table(["a", "bb"], [])
        lines = table.splitlines()
        assert lines == ["a  bb", "-  --"]

    def test_empty_rows_with_title(self):
        table = format_table(["metric", "value"], [], title="empty sweep")
        assert table.splitlines()[0] == "empty sweep"
        assert len(table.splitlines()) == 3

    def test_empty_rows_from_generator(self):
        table = format_table(["x"], (row for row in []))
        assert "x" in table

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError, match="at least one header"):
            format_table([], [])

    def test_row_width_mismatch_still_raises(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(["a", "b"], [[1]])


class TestPoolFormatTable:
    HEADER = "ReqID  InLen  Gen  Chnl  Status"

    def test_empty_pool_renders_header_only(self):
        assert RequestPool().format_table() == self.HEADER
        assert RequestPool().format_table(limit=10) == self.HEADER

    def test_limit_zero_renders_header_only(self):
        pool = RequestPool()
        pool.submit(InferenceRequest(request_id=1, input_len=4,
                                     output_len=2))
        assert pool.format_table(limit=0) == self.HEADER

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RequestPool().format_table(limit=-1)

    def test_limit_caps_rows(self):
        pool = RequestPool()
        for rid in range(5):
            pool.submit(InferenceRequest(request_id=rid, input_len=4,
                                         output_len=2))
        assert len(pool.format_table(limit=3).splitlines()) == 4
        assert len(pool.format_table().splitlines()) == 6
