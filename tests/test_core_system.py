"""Unit tests for the multi-device system (TP/PP scaling, §7)."""

import pytest

from repro.core.config import NeuPimsConfig
from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.model.spec import GPT3_7B, GPT3_30B
from repro.serving.trace import SHAREGPT, warmed_batch


def batch(n, seed=0):
    return warmed_batch(SHAREGPT, n, seed=seed)


class TestParallelismScheme:
    def test_device_count(self):
        assert ParallelismScheme(tp=4, pp=2).num_devices == 8

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            ParallelismScheme(tp=0, pp=1)

    def test_str(self):
        assert str(ParallelismScheme(2, 2)) == "(TP=2, PP=2)"


class TestSystem:
    def test_default_scheme_from_table3(self):
        system = NeuPimsSystem(GPT3_30B)
        assert system.scheme.tp == 4
        assert system.scheme.pp == 2
        assert system.layers_per_stage == 24

    def test_micro_batches_split_by_pp(self):
        system = NeuPimsSystem(GPT3_7B, ParallelismScheme(tp=1, pp=4))
        micro = system.micro_batches(batch(32))
        assert len(micro) == 4
        assert all(len(m) == 8 for m in micro)

    def test_iteration_latency_spans_pp_pitches(self):
        system = NeuPimsSystem(GPT3_7B, ParallelismScheme(tp=1, pp=2))
        reqs = batch(16)
        pitch = system.pipeline_pitch(reqs)
        assert system.iteration_latency(reqs) == pytest.approx(2 * pitch)

    def test_empty_batch_raises(self):
        system = NeuPimsSystem(GPT3_7B)
        with pytest.raises(ValueError):
            system.pipeline_pitch([])

    def test_throughput_positive(self):
        system = NeuPimsSystem(GPT3_7B)
        assert system.throughput_tokens_per_second(batch(32)) > 0

    def test_tp_allreduce_adds_latency(self):
        no_comm = NeuPimsSystem(GPT3_7B, ParallelismScheme(tp=1, pp=1))
        with_comm = NeuPimsSystem(GPT3_7B, ParallelismScheme(tp=1, pp=1))
        # Force the comm term on a copy by comparing tp=1 vs tp=4 pitches
        # normalized by per-device GEMM work (tp=4 shards compute 4x).
        assert no_comm._allreduce_cycles(64) == 0.0
        tp4 = NeuPimsSystem(GPT3_7B, ParallelismScheme(tp=4, pp=1))
        assert tp4._allreduce_cycles(64) > 0.0

    def test_sbi_halves_exposed_communication(self):
        config_sbi = NeuPimsConfig()
        config_ser = NeuPimsConfig(sub_batch_interleaving=False)
        sbi = NeuPimsSystem(GPT3_7B, ParallelismScheme(tp=4, pp=1),
                            config=config_sbi)
        ser = NeuPimsSystem(GPT3_7B, ParallelismScheme(tp=4, pp=1),
                            config=config_ser)
        assert sbi._allreduce_cycles(64) == pytest.approx(
            0.5 * ser._allreduce_cycles(64))

    def test_invalid_interconnect_raises(self):
        with pytest.raises(ValueError):
            NeuPimsSystem(GPT3_7B, interconnect_bandwidth=0.0)


class TestFigure14Shape:
    """At fixed total requests, TP-heavy schemes beat PP-heavy ones."""

    def _throughput(self, scheme, total_requests=256):
        system = NeuPimsSystem(GPT3_7B, scheme)
        reqs = batch(total_requests, seed=3)
        return system.throughput_tokens_per_second(reqs)

    def test_tp4_beats_pp_heavy_on_four_devices(self):
        tp_heavy = self._throughput(ParallelismScheme(tp=4, pp=1))
        pp_heavy = self._throughput(ParallelismScheme(tp=2, pp=2))
        assert tp_heavy > pp_heavy

    def test_tp8_beats_tp4pp2_on_eight_devices(self):
        tp_heavy = self._throughput(ParallelismScheme(tp=8, pp=1))
        pp_heavy = self._throughput(ParallelismScheme(tp=4, pp=2))
        assert tp_heavy > pp_heavy

    def test_executor_matches_iteration_latency(self):
        system = NeuPimsSystem(GPT3_7B)
        reqs = batch(16)
        assert system.executor()(reqs) == pytest.approx(
            system.iteration_latency(reqs))
