"""The ``python -m repro`` CLI over the scenario API."""

import json

import pytest

from repro.api.cli import build_spec, main, parse_axis
from repro.exec import available_workers

FAST_RUN = ["--model", "gpt3-7b", "--fidelity", "analytic",
            "--layers-resident", "2", "--batch-size", "16"]


def read_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestAxisParsing:
    def test_types_inferred(self):
        assert parse_axis("batch_size=16,32") == {"batch_size": [16, 32]}
        assert parse_axis("dual_row_buffer=true,false") == {
            "dual_row_buffer": [True, False]}
        assert parse_axis("rate_per_kcycle=0.5") == {
            "rate_per_kcycle": [0.5]}
        assert parse_axis("dataset=alpaca,sharegpt") == {
            "dataset": ["alpaca", "sharegpt"]}

    def test_malformed_axis_rejected(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_axis("batch_size")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_axis("=1,2")


class TestRun:
    def test_run_writes_result_json(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        assert main(["run", *FAST_RUN, "--json", str(out)]) == 0
        assert "throughput (tokens/s)" in capsys.readouterr().out
        payload = read_json(out)
        assert payload["spec"]["model"] == "gpt3-7b"
        assert payload["result"]["kind"] == "measurement"
        assert payload["result"]["tokens_per_second"] > 0

    def test_run_from_spec_file(self, tmp_path, capsys):
        from repro.api import ScenarioSpec, TrafficSpec
        spec = ScenarioSpec(model="gpt3-7b", layers_resident=2,
                            fidelity="analytic",
                            traffic=TrafficSpec.warmed(batch_size=16))
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec.to_dict()))
        out = tmp_path / "result.json"
        assert main(["run", "--spec", str(spec_file),
                     "--json", str(out)]) == 0
        from repro.api import run_scenario
        assert read_json(out)["result"] == run_scenario(spec).to_dict()

    def test_poisson_flags_build_serving_scenario(self, tmp_path):
        out = tmp_path / "serving.json"
        assert main(["run", "--model", "gpt3-7b", "--fidelity", "analytic",
                     "--layers-resident", "8", "--traffic", "poisson",
                     "--dataset", "alpaca", "--rate", "0.02",
                     "--horizon", "5e6", "--max-requests", "8",
                     "--max-batch-size", "8", "--json", str(out)]) == 0
        result = read_json(out)["result"]
        assert result["kind"] == "serving"
        assert result["max_batch_size"] <= 8

    def test_bad_flag_value_is_reported(self, capsys):
        assert main(["run", "--model", "gpt5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_spec_file_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        assert main(["run", "--spec", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
        bad.write_text('{"traffic": 7}')
        assert main(["run", "--spec", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestSweep:
    SWEEP = ["sweep", *FAST_RUN, "--axis", "batch_size=16,32",
             "--axis", "dual_row_buffer=false,true"]

    def test_serial_sweep_records(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert main([*self.SWEEP, "--json", str(out)]) == 0
        payload = read_json(out)
        assert payload["axes"] == ["batch_size", "dual_row_buffer"]
        assert len(payload["records"]) == 4
        assert all("tokens_per_second" in r for r in payload["records"])

    def test_workers_records_identical_to_serial(self, tmp_path):
        """Acceptance pin: `sweep --workers 2` == serial records."""
        if available_workers() < 2:
            pytest.skip("multi-worker assert needs >= 2 cores")
        serial = tmp_path / "serial.json"
        pooled = tmp_path / "pooled.json"
        assert main([*self.SWEEP, "--json", str(serial)]) == 0
        assert main([*self.SWEEP, "--workers", "2",
                     "--json", str(pooled)]) == 0
        assert read_json(pooled)["records"] == read_json(serial)["records"]


class TestCompare:
    def test_compare_outputs_all_systems(self, tmp_path, capsys):
        out = tmp_path / "compare.json"
        assert main(["compare", *FAST_RUN, "--systems", "npu-pim,neupims",
                     "--json", str(out)]) == 0
        payload = read_json(out)
        assert set(payload["results"]) == {"npu-pim", "neupims"}
        neu = payload["results"]["neupims"]["tokens_per_second"]
        naive = payload["results"]["npu-pim"]["tokens_per_second"]
        assert neu > naive

    def test_singular_system_flag_rejected(self, capsys):
        assert main(["compare", *FAST_RUN, "--system", "npu-only"]) == 2
        assert "--systems" in capsys.readouterr().err


class TestBuildSpec:
    def test_flags_override_spec_file(self, tmp_path):
        from repro.api import ScenarioSpec
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(
            ScenarioSpec(model="gpt3-13b", fidelity="analytic").to_dict()))
        parser_args = ["run", "--spec", str(spec_file),
                       "--model", "gpt3-7b", "--batch-size", "32"]
        from repro.api.cli import build_parser
        args = build_parser().parse_args(parser_args)
        spec = build_spec(args)
        assert spec.model == "gpt3-7b"
        assert spec.traffic.batch_size == 32
        assert spec.fidelity == "analytic"


class TestBench:
    def test_bench_emits_payload_and_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--requests", "48", "--repeats", "1",
                     "--json", str(out)]) == 0
        line = [l for l in capsys.readouterr().out.splitlines()
                if l.startswith("BENCH ")][0]
        payload = json.loads(line[len("BENCH "):])
        assert payload["records_identical"] is True
        assert payload["requests"] == 48
        assert read_json(out) == payload

    def test_bench_baseline_gate(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--requests", "48", "--repeats", "1",
                     "--json", str(out)]) == 0
        payload = read_json(out)
        # A matching baseline passes ...
        good = tmp_path / "good.json"
        good.write_text(json.dumps({
            "requests": payload["requests"],
            "iterations": payload["iterations"],
            "tokens": payload["tokens"],
            "sim_tokens_per_s": payload["sim_tokens_per_s"],
            "speedup": 0.01,
        }))
        assert main(["bench", "--requests", "48", "--repeats", "1",
                     "--baseline", str(good)]) == 0
        # ... and a drifted simulated metric or unreachable speedup fails.
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "sim_tokens_per_s": payload["sim_tokens_per_s"] * 2,
            "speedup": 10_000.0,
        }))
        assert main(["bench", "--requests", "48", "--repeats", "1",
                     "--baseline", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "sim_tokens_per_s" in err
        assert "speedup regression" in err

    def test_grouping_flag_routes_to_serving_spec(self):
        from repro.api.cli import build_parser
        args = build_parser().parse_args(
            ["run", *FAST_RUN, "--grouping", "off"])
        assert build_spec(args).serving.grouping == "off"


class TestComponents:
    def test_lists_builtin_components(self, tmp_path, capsys):
        out = tmp_path / "components.json"
        assert main(["components", "--json", str(out)]) == 0
        table = capsys.readouterr().out
        for name in ("neupims", "iteration", "poisson", "paged", "cycle"):
            assert name in table
        payload = read_json(out)
        kinds = {entry["kind"] for entry in payload}
        assert kinds == {"system", "scheduler", "traffic", "kv",
                         "fidelity", "faults", "router", "counters"}

    def test_kind_filter_and_bad_kind(self, capsys):
        assert main(["components", "--kind", "scheduler"]) == 0
        table = capsys.readouterr().out
        assert "iteration" in table
        assert "neupims" not in table
        assert main(["components", "--kind", "bogus"]) == 2
        assert "unknown component kind" in capsys.readouterr().err

    def test_lists_user_registered_components(self, capsys):
        from repro.registry import REGISTRY
        REGISTRY.register("traffic", "cli-test-burst", lambda spec: None,
                          description="test traffic", replace=True)
        try:
            assert main(["components", "--kind", "traffic"]) == 0
            assert "cli-test-burst" in capsys.readouterr().out
        finally:
            REGISTRY.unregister("traffic", "cli-test-burst")

    def test_scheduler_flag_routes_to_spec(self):
        from repro.api.cli import build_parser
        args = build_parser().parse_args(
            ["run", *FAST_RUN, "--scheduler", "iteration"])
        assert build_spec(args).scheduler == "iteration"

    def test_unregistered_system_flag_reports_alternatives(self, capsys):
        assert main(["run", *FAST_RUN, "--system", "tpu"]) == 2
        err = capsys.readouterr().err
        assert "tpu" in err and "neupims" in err

    def test_unregistered_traffic_flag_reports_alternatives(self, capsys):
        assert main(["run", *FAST_RUN, "--traffic", "burst"]) == 2
        err = capsys.readouterr().err
        assert "burst" in err and "poisson" in err

    def test_replay_traffic_flag_fails_with_clear_error(self, capsys):
        # replay stays JSON-spec only: no flags can carry the triples.
        assert main(["run", *FAST_RUN, "--traffic", "replay"]) == 2
        assert "replay_requests" in capsys.readouterr().err


class TestFaultFlags:
    FAULT_RUN = ["run", "--model", "gpt3-7b", "--fidelity", "analytic",
                 "--layers-resident", "2", "--traffic", "poisson",
                 "--rate", "0.02", "--horizon", "2e5",
                 "--max-requests", "6"]

    def test_fault_seed_implies_seeded_component(self):
        from repro.api.cli import build_parser
        args = build_parser().parse_args(
            [*self.FAULT_RUN, "--fault-seed", "7"])
        spec = build_spec(args)
        assert spec.faults == "seeded"
        assert spec.options_for("faults") == {"seed": 7}

    def test_explicit_component_name_is_kept(self):
        from repro.api.cli import build_parser
        args = build_parser().parse_args([*self.FAULT_RUN,
                                          "--faults", "none"])
        assert build_spec(args).faults == "none"

    def test_faulted_run_round_trips_through_spec_json(self, tmp_path):
        from repro.api import ScenarioSpec, run_scenario
        out = tmp_path / "faulted.json"
        assert main([*self.FAULT_RUN, "--faults", "seeded",
                     "--fault-seed", "3", "--json", str(out)]) == 0
        payload = read_json(out)
        assert payload["spec"]["faults"] == "seeded"
        assert payload["spec"]["faults_options"] == {"seed": 3}
        # The emitted spec fully reproduces the emitted result.
        spec = ScenarioSpec.from_dict(payload["spec"])
        assert run_scenario(spec).to_dict() == payload["result"]


class TestChaosFleet:
    def test_fleet_sweep_writes_report_and_passes(self, tmp_path, capsys):
        out = tmp_path / "fleet-chaos.json"
        assert main(["chaos", "--fleet", "--seeds", "1",
                     "--json", str(out)]) == 0
        assert "all invariants hold" in capsys.readouterr().out
        report = read_json(out)
        assert report["violations"] == []
        assert {cell["mode"] for cell in report["cells"]} == \
            {"batch", "stream"}
        for cell in report["cells"]:
            assert cell["completed"] + cell["timed_out"] + cell["shed"] \
                + cell["aborted"] == cell["requests"]
