"""Tests for the training-efficiency analysis (paper §9)."""

import pytest

from repro.analysis.training import (
    inference_vs_training_pim_value,
    profile_training_step,
)
from repro.model.spec import GPT3_7B, GPT3_13B


class TestTrainingProfile:
    def test_training_has_no_gemv_work(self):
        """§9: training entirely entails GEMMs."""
        profile = profile_training_step(GPT3_7B, batch_size=8, seq_len=512)
        assert profile.gemv_flops == 0.0
        assert profile.gemv_fraction == 0.0

    def test_speedup_ceiling_is_one(self):
        """With nothing to offload, NeuPIMs cannot beat NPU-only."""
        profile = profile_training_step(GPT3_7B, batch_size=8, seq_len=512)
        assert profile.neupims_speedup_ceiling == pytest.approx(1.0)

    def test_backward_multiplier_applied(self):
        profile = profile_training_step(GPT3_7B, batch_size=2, seq_len=128)
        from repro.model.layers import decoder_block_operators
        forward = sum(op.flops for op in decoder_block_operators(
            GPT3_7B, [128] * 2, phase="summarization")) * GPT3_7B.num_layers
        assert profile.gemm_flops == pytest.approx(3.0 * forward)

    def test_larger_model_more_cycles(self):
        small = profile_training_step(GPT3_7B, 4, 256)
        large = profile_training_step(GPT3_13B, 4, 256)
        assert large.total_cycles_npu_only > small.total_cycles_npu_only

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            profile_training_step(GPT3_7B, 0, 128)
        with pytest.raises(ValueError):
            profile_training_step(GPT3_7B, 1, 0)


class TestInferenceVsTraining:
    def test_inference_has_large_pim_value_training_none(self):
        contrast = inference_vs_training_pim_value(GPT3_7B, batch_size=64,
                                                   seq_len=384)
        assert contrast["inference_gemv_time_share"] > 0.3
        assert contrast["training_gemv_time_share"] == 0.0
        assert contrast["training_speedup_ceiling"] == pytest.approx(1.0)

    def test_inference_share_grows_with_seq_len(self):
        short = inference_vs_training_pim_value(GPT3_7B, 64, 64)
        long = inference_vs_training_pim_value(GPT3_7B, 64, 1024)
        assert long["inference_gemv_time_share"] > \
            short["inference_gemv_time_share"]
