"""Unit tests for the paged KV-cache allocator (vLLM-style)."""

import pytest

from repro.model.spec import GPT3_7B
from repro.serving.paging import (
    OutOfMemoryError,
    PagedKvAllocator,
    PagedKvConfig,
    max_batch_without_paging,
)


@pytest.fixture
def allocator():
    return PagedKvAllocator(PagedKvConfig(), GPT3_7B)


class TestBlocks:
    def test_block_bytes(self, allocator):
        per_token = 2 * 4096 * 2 * 32
        assert allocator.block_bytes == per_token * 16

    def test_blocks_for_rounds_up(self, allocator):
        assert allocator.blocks_for(1) == 1
        assert allocator.blocks_for(16) == 1
        assert allocator.blocks_for(17) == 2

    def test_blocks_for_zero(self, allocator):
        assert allocator.blocks_for(0) == 0

    def test_blocks_for_negative_raises(self, allocator):
        with pytest.raises(ValueError):
            allocator.blocks_for(-1)


class TestAllocation:
    def test_allocate_consumes_free_blocks(self, allocator):
        before = allocator.free_blocks
        newly = allocator.allocate(1, tokens=100)
        assert newly == allocator.blocks_for(100)
        assert allocator.free_blocks == before - newly

    def test_allocation_growth_is_incremental(self, allocator):
        allocator.allocate(1, tokens=16)
        newly = allocator.allocate(1, tokens=17)
        assert newly == 1

    def test_no_growth_within_block(self, allocator):
        allocator.allocate(1, tokens=10)
        assert allocator.allocate(1, tokens=16) == 0

    def test_shrinking_raises(self, allocator):
        allocator.allocate(1, tokens=100)
        with pytest.raises(ValueError):
            allocator.allocate(1, tokens=10)

    def test_out_of_memory_raises(self, allocator):
        huge = allocator.total_blocks * allocator.config.block_tokens + 16
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(1, tokens=huge)

    def test_can_allocate_predicts_allocation(self, allocator):
        tokens = allocator.total_blocks * allocator.config.block_tokens
        assert allocator.can_allocate(1, tokens)
        assert not allocator.can_allocate(1, tokens + 16)

    def test_release_returns_blocks(self, allocator):
        allocator.allocate(1, tokens=160)
        freed = allocator.release(1)
        assert freed == allocator.blocks_for(160)
        assert allocator.free_blocks == allocator.total_blocks

    def test_release_unknown_request_is_zero(self, allocator):
        assert allocator.release(42) == 0

    def test_utilization_fraction(self, allocator):
        allocator.allocate(1, tokens=allocator.config.block_tokens
                           * allocator.total_blocks // 2)
        assert allocator.utilization() == pytest.approx(0.5, abs=0.01)

    def test_resident_requests_listed(self, allocator):
        allocator.allocate(3, tokens=1)
        allocator.allocate(1, tokens=1)
        assert allocator.resident_requests() == [1, 3]


class TestPagingAdvantage:
    def test_paging_beats_worst_case_reservation(self):
        """The paper's §2.2 motivation: paging admits much larger batches
        than worst-case pre-allocation for skewed length distributions."""
        config = PagedKvConfig()
        spec = GPT3_7B
        worst_case_batch = max_batch_without_paging(config, spec,
                                                    max_seq_len=2048)
        allocator = PagedKvAllocator(config, spec)
        admitted = 0
        # Realistic contexts (~200 tokens) admit far more requests.
        while allocator.can_allocate(admitted, 200):
            allocator.allocate(admitted, 200)
            admitted += 1
            if admitted > 10_000:
                break
        assert admitted > 5 * worst_case_batch

    def test_pipeline_parallel_shrinks_blocks(self):
        config = PagedKvConfig()
        full = PagedKvAllocator(config, GPT3_7B)
        half = PagedKvAllocator(config, GPT3_7B, layers_resident=16)
        assert half.total_blocks == 2 * full.total_blocks

    def test_capacity_too_small_raises(self):
        with pytest.raises(ValueError):
            PagedKvAllocator(PagedKvConfig(capacity_bytes=1024), GPT3_7B)

    def test_invalid_layers_raises(self):
        with pytest.raises(ValueError):
            PagedKvAllocator(PagedKvConfig(), GPT3_7B, layers_resident=0)
