"""Unit tests for the DRAM power model (Table 5 methodology)."""

import pytest

from repro.dram.channel import Channel, IssueRecord
from repro.dram.commands import Command, CommandType
from repro.dram.power import PowerModel, PowerParams, PowerReport


def record(ctype, k=0, banks=(), complete=1000.0):
    kwargs = {}
    if ctype in (CommandType.ACT,):
        kwargs = {"bank": 0, "row": 0}
    elif ctype in (CommandType.RD, CommandType.WR, CommandType.PRE):
        kwargs = {"bank": 0}
    elif ctype is CommandType.PIM_ACTIVATION:
        kwargs = {"banks": banks or (0, 1, 2, 3), "row": 0}
    elif ctype is CommandType.PIM_GEMV:
        kwargs = {"k": k or 1}
    elif ctype is CommandType.PIM_GWRITE:
        kwargs = {"bank": 0, "row": 0}
    cmd = Command(ctype, **kwargs)
    return IssueRecord(cmd, 0.0, 1.0, complete)


class TestCommandEnergy:
    def test_pim_wave_is_4x_read_power(self):
        """The paper's assumption: all-bank compute = 4x read command."""
        params = PowerParams()
        model = PowerModel(params, banks_per_channel=8)
        wave = model.command_energy_nj(record(CommandType.PIM_DOTPRODUCT))
        read = model.command_energy_nj(record(CommandType.RD))
        assert wave == pytest.approx(4.0 * read)

    def test_gemv_energy_scales_with_waves(self):
        model = PowerModel()
        e1 = model.command_energy_nj(record(CommandType.PIM_GEMV, k=1))
        e10 = model.command_energy_nj(record(CommandType.PIM_GEMV, k=10))
        assert e10 > 9 * e1 / 2

    def test_write_costs_more_than_read(self):
        model = PowerModel()
        assert model.command_energy_nj(record(CommandType.WR)) > \
            model.command_energy_nj(record(CommandType.RD))

    def test_header_and_precharge_free(self):
        model = PowerModel()
        assert model.command_energy_nj(record(CommandType.PIM_HEADER)) == 0.0
        assert model.command_energy_nj(record(CommandType.PRE)) == 0.0

    def test_activation_energy_per_bank(self):
        model = PowerModel()
        e = model.command_energy_nj(record(CommandType.PIM_ACTIVATION))
        assert e == pytest.approx(4 * PowerParams().act_pre_nj)


class TestPowerReport:
    def test_background_power_dominates_idle(self):
        model = PowerModel(dual_row_buffer=False)
        report = model.report([], elapsed_cycles=1_000_000)
        assert report.average_power_mw == pytest.approx(
            PowerParams().background_mw)

    def test_dual_row_buffer_raises_background(self):
        single = PowerModel(dual_row_buffer=False).report([], 1_000_000)
        dual = PowerModel(dual_row_buffer=True).report([], 1_000_000)
        assert dual.average_power_mw > single.average_power_mw

    def test_average_power_includes_events(self):
        model = PowerModel()
        records = [record(CommandType.RD, complete=1000.0)] * 100
        report = model.report(records, elapsed_cycles=1000.0)
        assert report.average_power_mw > report.background_mw

    def test_elapsed_defaults_to_last_completion(self):
        model = PowerModel()
        report = model.report([record(CommandType.RD, complete=500.0)])
        assert report.elapsed_cycles == 500.0

    def test_energy_consistency(self):
        report = PowerReport(elapsed_cycles=1000.0, background_mw=100.0,
                             event_energy_nj=50.0)
        assert report.total_energy_nj == pytest.approx(
            report.background_energy_nj + 50.0)


class TestTable5Workload:
    """The Table 5 comparison: non-PIM HBM vs dual-row-buffer PIM."""

    @staticmethod
    def _pim_power() -> float:
        """NeuPIMs: concurrent PIM GEMVs + memory reads."""
        channel = Channel(0, dual_row_buffer=True)
        channel.issue(Command(CommandType.PIM_GWRITE, bank=0, row=1))
        last = 0.0
        for _ in range(20):
            rec = channel.issue(Command(CommandType.PIM_GEMV, k=32),
                                earliest=last)
            last = rec.complete_time
        for i in range(200):
            bank = 8 + (i % 8)
            channel.issue(Command(CommandType.ACT, bank=bank, row=i))
            channel.issue(Command(CommandType.RD, bank=bank))
            channel.issue(Command(CommandType.PRE, bank=bank))
        model = PowerModel(dual_row_buffer=True,
                           banks_per_channel=channel.org.banks_per_channel)
        return model.report(channel.issued,
                            elapsed_cycles=last).average_power_mw

    @staticmethod
    def _hbm_power() -> float:
        """NPU-only: plain memory traffic on a vanilla HBM channel."""
        channel = Channel(0, dual_row_buffer=False)
        banks = range(8)
        for round_index in range(25):
            for bank in banks:
                channel.issue(Command(CommandType.ACT, bank=bank,
                                      row=round_index))
            for bank in banks:
                channel.issue(Command(CommandType.RD, bank=bank))
            for bank in banks:
                channel.issue(Command(CommandType.PRE, bank=bank))
        model = PowerModel(dual_row_buffer=False,
                           banks_per_channel=channel.org.banks_per_channel)
        return model.report(channel.issued).average_power_mw

    def test_pim_power_in_table5_regime(self):
        # Table 5: dual-row-buffer PIM averages 634.8 mW per channel.
        assert 300.0 < self._pim_power() < 1200.0

    def test_hbm_power_in_table5_regime(self):
        # Table 5: non-PIM HBM averages 364.1 mW per channel.
        assert 150.0 < self._hbm_power() < 700.0

    def test_pim_vs_hbm_ratio_near_paper(self):
        """The paper reports a ~1.8x average power increase."""
        ratio = self._pim_power() / self._hbm_power()
        assert 1.3 < ratio < 2.5
