"""The component registry: error paths, options, and custom components.

Covers the registration contract the API redesign promises: unknown
component names raise listing the registered alternatives, duplicate
registrations are rejected, option dicts freeze/thaw canonically, and a
user-registered component (spec'd by name) materializes and pickles
across process-pool workers like any built-in.
"""

import pickle

import pytest

from repro.api import ScenarioSpec, Session, TrafficSpec, run_scenarios
from repro.registry import (KINDS, REGISTRY, ComponentRegistry,
                            component_names, freeze_options, get_component,
                            register_builtins, thaw_options, unregister)
from repro.serving.scheduler import IterationScheduler

FAST = dict(model="gpt3-7b", fidelity="analytic", layers_resident=2)


class TestErrorPaths:
    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError) as err:
            get_component("scheduler", "no-such-policy")
        message = str(err.value)
        assert "no-such-policy" in message
        assert "iteration" in message  # the registered alternatives

    def test_unknown_system_lists_all_builtins(self):
        with pytest.raises(ValueError) as err:
            get_component("system", "tpu")
        for name in ("neupims", "npu-pim", "npu-only", "gpu-only",
                     "transpim"):
            assert name in str(err.value)

    def test_unknown_kind_rejected(self):
        registry = ComponentRegistry()
        with pytest.raises(ValueError, match="unknown component kind"):
            registry.register("flavor", "x", lambda: None)
        with pytest.raises(ValueError, match="unknown component kind"):
            registry.names("flavor")

    def test_duplicate_registration_rejected(self):
        registry = ComponentRegistry()
        registry.register("traffic", "burst", lambda spec: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("traffic", "burst", lambda spec: None)

    def test_replace_overrides_existing(self):
        registry = ComponentRegistry()
        registry.register("traffic", "burst", lambda spec: 1)
        registry.register("traffic", "burst", lambda spec: 2, replace=True)
        assert registry.create("traffic", "burst", None) == 2

    def test_names_are_case_insensitive(self):
        assert get_component("system", "NeuPIMs").name == "neupims"

    def test_every_kind_has_builtins(self):
        for kind in KINDS:
            assert component_names(kind), f"no builtin {kind} components"

    def test_builtins_reregister_is_rejected_on_populated_registry(self):
        # The process-wide registry refuses a second builtin load.
        with pytest.raises(ValueError, match="already registered"):
            register_builtins(REGISTRY)


class TestOptionFreezing:
    def test_round_trips_nested_mappings(self):
        options = {"b": 2, "a": {"y": [1, 2], "x": "s"}}
        frozen = freeze_options(options)
        assert frozen == (("a", ("__mapping__", ("x", "s"),
                                 ("y", (1, 2)))), ("b", 2))
        assert thaw_options(frozen) == {"a": {"x": "s", "y": [1, 2]},
                                        "b": 2}

    def test_list_of_pairs_stays_a_list(self):
        # A list value shaped like (name, value) pairs must NOT come
        # back as a dict — the mapping tag disambiguates.
        options = {"schedule": [["stage", 1], ["other", 2]], "empty": {}}
        thawed = thaw_options(freeze_options(options))
        assert thawed == {"schedule": [["stage", 1], ["other", 2]],
                          "empty": {}}

    def test_reserved_marker_value_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            freeze_options({"x": ["__mapping__", 1, 2]})
        # Even when the tail happens to parse as pairs — a raw JSON
        # list must never be silently re-typed into a dict.
        with pytest.raises(ValueError, match="reserved"):
            freeze_options({"x": ["__mapping__", ["a", 1]]})
        with pytest.raises(ValueError, match="reserved"):
            freeze_options({"x": ["__mapping__"]})

    def test_component_kinds_are_case_insensitive(self):
        assert component_names("System") == component_names("system")
        assert get_component("SYSTEM", "neupims").name == "neupims"

    def test_idempotent_and_order_insensitive(self):
        one = freeze_options({"a": 1, "b": 2})
        other = freeze_options({"b": 2, "a": 1})
        assert one == other
        assert freeze_options(one) == one
        nested = freeze_options({"a": {"b": [1, 2]}, "c": [[1, 2]]})
        assert freeze_options(nested) == nested

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="keys must be strings"):
            freeze_options({1: "x"})

    def test_hashable(self):
        hash(freeze_options({"a": {"b": [1, 2]}}))


class CountingScheduler(IterationScheduler):
    """IterationScheduler that counts its boundary admissions."""

    def __init__(self, *, bonus: int = 0, **wiring) -> None:
        super().__init__(**wiring)
        self.bonus = bonus
        self.admit_calls = 0

    def _admit(self) -> int:
        self.admit_calls += 1
        return super()._admit()


REGISTRY.register("scheduler", "counting-test", CountingScheduler,
                  description="test-only scheduler", replace=True)


def _custom_spec(**overrides) -> ScenarioSpec:
    spec = ScenarioSpec(
        scheduler="counting-test",
        scheduler_options={"bonus": 3},
        traffic=TrafficSpec.poisson(dataset="alpaca", rate_per_kcycle=0.02,
                                    horizon_cycles=2e6, seed=5,
                                    max_requests=12),
        **FAST)
    return spec.override(**overrides) if overrides else spec


class TestCustomComponents:
    def test_registered_scheduler_materializes_by_name(self):
        session = Session(_custom_spec()).materialize()
        assert isinstance(session.scheduler, CountingScheduler)
        assert session.scheduler.bonus == 3
        result = session.run()
        assert result.total_tokens > 0
        assert session.scheduler.admit_calls > 0

    def test_custom_scheduler_matches_builtin_records(self):
        # A pass-through subclass must reproduce the builtin exactly.
        custom = Session(_custom_spec()).run()
        builtin = Session(_custom_spec(scheduler="iteration",
                                       scheduler_options={})).run()
        assert custom.records == builtin.records
        assert custom.to_dict() == builtin.to_dict()

    def test_spec_with_custom_component_pickles(self):
        spec = _custom_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert Session(clone).run().records == Session(spec).run().records

    def test_custom_component_spec_runs_across_process_pool(self):
        # Fork workers inherit the parent's registrations, so a spec
        # naming a user component fans out like any built-in.  Two
        # workers on one core merely oversubscribe; no speedup assert.
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        from repro.exec import ProcessPoolBackend
        specs = [_custom_spec(), _custom_spec(seed=6)]
        serial = [Session(spec).run() for spec in specs]
        pooled = run_scenarios(
            specs, parallel=ProcessPoolBackend(2, start_method="fork"))
        assert [r.to_dict() for r in pooled] == \
            [r.to_dict() for r in serial]

    def test_system_options_forwarded_to_device(self):
        spec = ScenarioSpec(system_options={"channel_pool": 8},
                            traffic=TrafficSpec.warmed(batch_size=8),
                            **FAST)
        session = Session(spec).materialize()
        assert session.device.channel_pool == 8

    def test_kv_options_override_serving_knobs(self):
        spec = _custom_spec(scheduler="iteration", scheduler_options={},
                            kv_options={"block_tokens": 32})
        session = Session(spec).materialize()
        assert all(a.config.block_tokens == 32 for a in session.allocators)

    def test_unknown_kv_option_rejected(self):
        spec = _custom_spec(kv_options={"blocc_tokens": 32})
        with pytest.raises(ValueError, match="blocc_tokens"):
            Session(spec).materialize()

    def test_fidelity_options_reach_the_engine(self):
        # Builtin engines accept no options and must say so by name ...
        spec = ScenarioSpec(fidelity="analytic",
                            fidelity_options={"samples": 3},
                            traffic=TrafficSpec.warmed(batch_size=4),
                            model="gpt3-7b", layers_resident=2)
        with pytest.raises(ValueError, match="samples"):
            Session(spec).materialize()
        # ... while a registered engine receives them.
        received = {}

        def tunable(session, **options):
            received.update(options)
            return None

        REGISTRY.register("fidelity", "tunable-test", tunable,
                          replace=True)
        try:
            Session(ScenarioSpec(fidelity="tunable-test",
                                 fidelity_options={"samples": 3},
                                 traffic=TrafficSpec.warmed(batch_size=4),
                                 model="gpt3-7b",
                                 layers_resident=2)).materialize()
            assert received == {"samples": 3}
        finally:
            unregister("fidelity", "tunable-test")

    def test_unknown_warmed_traffic_option_rejected(self):
        # Regression: multi-batch warmed traffic used to crash with a
        # TypeError deep in sample_batches instead of naming the option.
        spec = ScenarioSpec(
            traffic=TrafficSpec.warmed(batch_size=4, num_batches=2),
            traffic_options={"start_id": 10}, **FAST)
        with pytest.raises(ValueError, match="start_id"):
            Session(spec).materialize()

    def test_non_string_component_names_rejected_cleanly(self):
        # A null from a config loader must fail as a ValueError (the
        # CLI's exit-2 path), not an AttributeError on .lower().
        with pytest.raises(ValueError, match="must be a component name"):
            ScenarioSpec(system=None)
        with pytest.raises(ValueError, match="must be a string"):
            TrafficSpec(kind=None)

    def test_custom_system_may_opt_into_cycle_fidelity(self):
        # The built-in non-PIM baselines reject cycle fidelity, but a
        # registered system that accepts the estimator kwarg is allowed
        # to calibrate (the factory owns the decision).
        from repro.core.device import NeuPimsDevice
        REGISTRY.register(
            "system", "cycle-test-system",
            lambda model, config, *, tp, layers_resident=None,
            estimator=None, **options: NeuPimsDevice(
                model, config, tp=tp, layers_resident=layers_resident,
                estimator=estimator),
            replace=True)
        try:
            spec = ScenarioSpec(system="cycle-test-system",
                                fidelity="cycle", model="gpt3-7b",
                                layers_resident=2,
                                traffic=TrafficSpec.warmed(batch_size=4))
            session = Session(spec).materialize()
            assert session.device.estimator is not None
            with pytest.raises(ValueError, match="no PIM estimator"):
                ScenarioSpec(system="gpu-only", fidelity="cycle")
        finally:
            unregister("system", "cycle-test-system")

    def test_component_names_normalize_to_lowercase(self):
        # Registry lookups are case-insensitive; the stored spec fields
        # must agree with what will resolve, or downstream kind/system
        # comparisons would take the wrong branch.
        spec = ScenarioSpec(system="NeuPIMs", scheduler="Iteration",
                            fidelity="Analytic",
                            traffic=TrafficSpec(kind="Replay",
                                                replay_requests=((16, 2,
                                                                  0.0),)))
        assert spec.system == "neupims"
        assert spec.scheduler == "iteration"
        assert spec.fidelity == "analytic"
        assert spec.traffic.kind == "replay"
        with pytest.raises(ValueError, match="replay_requests"):
            TrafficSpec(kind="Replay")  # validated as replay traffic

    def test_registry_warmup_carries_registrations_to_spawn_workers(self):
        # Spawn workers start with a bare registry: only the builtin
        # components exist until the per-worker initializer imports the
        # registering module (this one).  Fork inherits; spawn must not
        # silently differ.
        import multiprocessing
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        from repro.api.session import run_scenario
        from repro.exec import RegistryWarmup
        specs = [_custom_spec(max_requests=4, horizon_cycles=5e5),
                 _custom_spec(max_requests=4, horizon_cycles=5e5, seed=9)]
        # Two specs force a real pool (one chunk short-circuits to the
        # parent process, which would prove nothing about spawn); the
        # public run_scenarios path chains the registry warmup with the
        # perf-cache warmup it always installs.
        results = run_scenarios(specs, parallel=2, start_method="spawn",
                                warmup=RegistryWarmup((__name__,)))
        assert [r.to_dict() for r in results] == \
            [run_scenario(spec).to_dict() for spec in specs]

    def test_warmup_chain_runs_initializers_in_order(self):
        from repro.exec import RegistryWarmup, WarmupChain
        calls = []
        chain = WarmupChain((lambda: calls.append("a"),
                             lambda: calls.append("b")))
        chain()
        assert calls == ["a", "b"]
        RegistryWarmup(("json",))()  # idempotent stdlib import

    def test_cleanup_unregister(self):
        REGISTRY.register("traffic", "ephemeral-test", lambda spec: None)
        assert "ephemeral-test" in component_names("traffic")
        unregister("traffic", "ephemeral-test")
        assert "ephemeral-test" not in component_names("traffic")
