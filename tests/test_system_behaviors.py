"""Behavioral sweeps of the multi-device system model (TP/PP surface)."""

import pytest

from repro.core.config import NeuPimsConfig
from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.model.spec import GPT3_7B, GPT3_30B
from repro.serving.trace import SHAREGPT, warmed_batch


def batch(n, seed=0):
    return warmed_batch(SHAREGPT, n, seed=seed)


class TestScalingSurface:
    def test_more_tp_devices_never_slower(self):
        """At a fixed batch, growing TP monotonically improves throughput
        (GEMMs shard and the channel pool grows)."""
        values = []
        for tp in (1, 2, 4, 8):
            system = NeuPimsSystem(GPT3_7B, ParallelismScheme(tp, 1))
            values.append(system.throughput_tokens_per_second(batch(256)))
        for a, b in zip(values, values[1:]):
            assert b >= a * 0.98

    def test_pp_reduces_per_device_layers(self):
        pp1 = NeuPimsSystem(GPT3_7B, ParallelismScheme(1, 1))
        pp4 = NeuPimsSystem(GPT3_7B, ParallelismScheme(1, 4))
        assert pp1.layers_per_stage == 32
        assert pp4.layers_per_stage == 8

    def test_pp_pitch_shorter_than_full_iteration(self):
        system = NeuPimsSystem(GPT3_7B, ParallelismScheme(1, 4))
        requests = batch(64)
        assert system.pipeline_pitch(requests) < \
            system.iteration_latency(requests)

    def test_scaling_efficiency_decreases(self):
        """Figure 14: throughput per device falls as the cluster grows
        (per-device batch shrinks)."""
        def per_device(tp, pp):
            system = NeuPimsSystem(GPT3_7B, ParallelismScheme(tp, pp))
            thpt = system.throughput_tokens_per_second(batch(256, seed=4))
            return thpt / (tp * pp)
        assert per_device(2, 1) <= per_device(1, 1) * 1.05
        assert per_device(8, 2) < per_device(2, 1)

    def test_communication_grows_with_tp(self):
        small = NeuPimsSystem(GPT3_7B, ParallelismScheme(2, 1))
        large = NeuPimsSystem(GPT3_7B, ParallelismScheme(8, 1))
        assert large._allreduce_cycles(128) > small._allreduce_cycles(128)

    def test_slow_interconnect_hurts_tp(self):
        fast = NeuPimsSystem(GPT3_7B, ParallelismScheme(8, 1),
                             interconnect_bandwidth=400e9)
        slow = NeuPimsSystem(GPT3_7B, ParallelismScheme(8, 1),
                             interconnect_bandwidth=10e9)
        requests = batch(256, seed=5)
        assert slow.iteration_latency(requests) > \
            fast.iteration_latency(list(requests))


class TestConfigPropagation:
    def test_feature_flags_reach_the_device(self):
        config = NeuPimsConfig.naive_npu_pim()
        system = NeuPimsSystem(GPT3_30B, config=config)
        assert not system.device.config.dual_row_buffer
        assert not system.device.config.sub_batch_interleaving

    def test_channel_pool_scales_with_tp(self):
        system = NeuPimsSystem(GPT3_7B, ParallelismScheme(4, 1))
        assert system.device.channel_pool == 4 * 32

    def test_naive_system_slower_than_neupims_system(self):
        requests = batch(256, seed=6)
        neupims = NeuPimsSystem(GPT3_7B, ParallelismScheme(4, 1))
        naive = NeuPimsSystem(GPT3_7B, ParallelismScheme(4, 1),
                              config=NeuPimsConfig.naive_npu_pim())
        t_n = neupims.throughput_tokens_per_second(requests)
        t_naive = naive.throughput_tokens_per_second(batch(256, seed=6))
        assert t_n > t_naive

    def test_micro_batches_cover_all_requests(self):
        system = NeuPimsSystem(GPT3_7B, ParallelismScheme(1, 3))
        requests = batch(32, seed=7)
        micro = system.micro_batches(requests)
        flattened = [r.request_id for m in micro for r in m]
        assert sorted(flattened) == sorted(r.request_id for r in requests)
