"""Unit tests for the memory controller (MEM/PIM interleaving, refresh)."""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType
from repro.dram.controller import ControllerConfig, MemoryController


def make_controller(dual=True, pim_priority=True, header_aware=True,
                    refresh=True):
    channel = Channel(0, dual_row_buffer=dual)
    config = ControllerConfig(pim_priority=pim_priority,
                              header_aware_refresh=header_aware,
                              refresh_enabled=refresh)
    return MemoryController(channel, config)


def mem_stream(bank, rows):
    commands = []
    for row in rows:
        commands.append(Command(CommandType.ACT, bank=bank, row=row))
        commands.append(Command(CommandType.RD, bank=bank))
        commands.append(Command(CommandType.PRE, bank=bank))
    return commands


def gemv_stream(k=8):
    return [
        Command(CommandType.PIM_HEADER, k=k),
        Command(CommandType.PIM_GWRITE, bank=0, row=9999),
        Command(CommandType.PIM_GEMV, k=k),
        Command(CommandType.PIM_PRECHARGE),
    ]


class TestDrain:
    def test_drain_issues_everything(self):
        controller = make_controller()
        controller.enqueue_mem(mem_stream(0, [1, 2]))
        controller.enqueue_pim(gemv_stream())
        records = controller.drain()
        non_ref = [r for r in records if r.command.ctype is not CommandType.REF]
        assert len(non_ref) == 6 + 4

    def test_finish_time_positive(self):
        controller = make_controller()
        controller.enqueue_pim(gemv_stream())
        controller.drain()
        assert controller.finish_time > 0

    def test_empty_drain_is_noop(self):
        controller = make_controller()
        assert controller.drain() == []
        assert controller.finish_time == 0.0

    def test_step_returns_none_when_drained(self):
        controller = make_controller()
        assert controller.step() is None


class TestPimDependencyChain:
    def test_pim_commands_serialize_on_completion_frontier(self):
        controller = make_controller(refresh=False)
        controller.enqueue_pim(gemv_stream(k=4))
        records = controller.drain()
        gwrite = next(r for r in records
                      if r.command.ctype is CommandType.PIM_GWRITE)
        gemv = next(r for r in records
                    if r.command.ctype is CommandType.PIM_GEMV)
        assert gemv.issue_time >= gwrite.complete_time

    def test_mem_interleaves_during_gemv(self):
        """With dual row buffers, memory reads complete inside the GEMV
        window — the concurrency the dual-row-buffer bank enables."""
        controller = make_controller(dual=True, refresh=False)
        controller.enqueue_pim(gemv_stream(k=64))
        controller.enqueue_mem(mem_stream(8, range(10)))
        records = controller.drain()
        gemv = next(r for r in records
                    if r.command.ctype is CommandType.PIM_GEMV)
        reads = [r for r in records if r.command.ctype is CommandType.RD]
        inside = [r for r in reads
                  if gemv.issue_time < r.complete_time < gemv.complete_time]
        assert inside, "no memory reads overlapped the GEMV window"

    def test_blocked_mode_serializes_reads_after_gemv(self):
        controller = make_controller(dual=False, refresh=False)
        controller.enqueue_pim(gemv_stream(k=64))
        controller.enqueue_mem(mem_stream(8, range(10)))
        records = controller.drain()
        gemv = next(r for r in records
                    if r.command.ctype is CommandType.PIM_GEMV)
        reads = [r for r in records if r.command.ctype is CommandType.RD]
        assert all(r.complete_time >= gemv.complete_time for r in reads)

    def test_blocked_mode_finishes_later_than_dual(self):
        def total(dual):
            controller = make_controller(dual=dual, refresh=False)
            controller.enqueue_pim(gemv_stream(k=64))
            controller.enqueue_mem(mem_stream(8, range(20)))
            controller.drain()
            return controller.finish_time
        assert total(dual=False) > total(dual=True)


class TestRefresh:
    def test_refresh_fires_on_deadline(self):
        controller = make_controller()
        # Enough memory traffic to cross tREFI.
        controller.enqueue_mem(mem_stream(0, range(100)))
        controller.drain()
        assert controller.stats.get("refresh.issued") >= 1

    def test_refresh_disabled(self):
        controller = make_controller(refresh=False)
        controller.enqueue_mem(mem_stream(0, range(100)))
        records = controller.drain()
        assert all(r.command.ctype is not CommandType.REF for r in records)

    def test_header_aware_refresh_hoists_before_long_gemv(self):
        controller = make_controller(header_aware=True)
        # Push the clock close to the refresh deadline with memory traffic,
        # then a long GEMV announced by a header.
        controller.enqueue_mem(mem_stream(0, range(60)))
        controller.drain()
        controller.enqueue_pim(gemv_stream(k=200))
        controller.drain()
        gemv = next(r for r in controller.records
                    if r.command.ctype is CommandType.PIM_GEMV)
        refreshes = [r for r in controller.records
                     if r.command.ctype is CommandType.REF]
        assert not any(
            gemv.issue_time < r.issue_time < gemv.complete_time
            for r in refreshes
        ), "refresh landed inside a header-announced GEMV"

    def test_non_header_aware_gemv_pays_interruption_penalty(self):
        aware = make_controller(header_aware=True)
        naive = make_controller(header_aware=False)
        for controller in (aware, naive):
            controller.enqueue_mem(mem_stream(0, range(60)))
            controller.drain()
            controller.enqueue_pim(gemv_stream(k=200))
            controller.drain()
        assert naive.stats.get("refresh.gemv_interrupted") >= 1
        assert aware.stats.get("refresh.gemv_interrupted") == 0


class TestPolicy:
    def test_pim_priority_issues_pim_first_on_tie(self):
        controller = make_controller(pim_priority=True, refresh=False)
        controller.enqueue_mem(mem_stream(0, [1]))
        controller.enqueue_pim(gemv_stream(k=1))
        record = controller.step()
        assert record.command.is_pim

    def test_mem_priority_issues_mem_first(self):
        controller = make_controller(pim_priority=False, refresh=False)
        controller.enqueue_mem(mem_stream(0, [1]))
        controller.enqueue_pim(gemv_stream(k=1))
        record = controller.step()
        assert not record.command.is_pim
