"""Tests for the deployment planner."""

import pytest

from repro.core.planner import (
    DeploymentPlan,
    kv_fits,
    plan_deployment,
    weights_fit,
)
from repro.core.system import ParallelismScheme
from repro.model.spec import GPT3_7B, GPT3_175B
from repro.serving.trace import ALPACA, SHAREGPT


class TestFitChecks:
    def test_7b_fits_single_device(self):
        assert weights_fit(GPT3_7B, ParallelismScheme(1, 1))

    def test_175b_does_not_fit_single_device(self):
        assert not weights_fit(GPT3_175B, ParallelismScheme(1, 1))

    def test_175b_fits_table3_scheme(self):
        assert weights_fit(GPT3_175B, ParallelismScheme(8, 4))

    def test_kv_fits_reasonable_batch(self):
        assert kv_fits(GPT3_7B, ParallelismScheme(4, 1), batch_size=256,
                       avg_seq_len=256)

    def test_kv_rejects_absurd_batch(self):
        assert not kv_fits(GPT3_7B, ParallelismScheme(1, 1),
                           batch_size=100_000, avg_seq_len=2048)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            kv_fits(GPT3_7B, ParallelismScheme(1, 1), 0, 10)
        with pytest.raises(ValueError):
            weights_fit(GPT3_7B, ParallelismScheme(1, 1),
                        weight_capacity_fraction=0.0)


class TestPlanner:
    def test_plan_returns_feasible_best(self):
        plan = plan_deployment(GPT3_7B, ALPACA, max_devices=4,
                               batch_sizes=[64, 256])
        assert isinstance(plan, DeploymentPlan)
        assert plan.best is not None
        assert plan.best.feasible
        assert plan.best.devices <= 4

    def test_best_maximizes_throughput(self):
        plan = plan_deployment(GPT3_7B, ALPACA, max_devices=4,
                               batch_sizes=[64, 256])
        feasible = [p for p in plan.points if p.feasible]
        assert plan.best.throughput_tokens_per_second == pytest.approx(
            max(p.throughput_tokens_per_second for p in feasible))

    def test_latency_constraint_filters(self):
        unconstrained = plan_deployment(GPT3_7B, SHAREGPT, max_devices=4,
                                        batch_sizes=[64, 512])
        tight = plan_deployment(
            GPT3_7B, SHAREGPT, max_devices=4, batch_sizes=[64, 512],
            max_iteration_latency_ms=unconstrained.best.iteration_latency_ms
            * 0.5)
        if tight.best is not None:
            assert tight.best.iteration_latency_ms <= \
                unconstrained.best.iteration_latency_ms * 0.5

    def test_infeasible_model_has_no_best_at_one_device(self):
        plan = plan_deployment(GPT3_175B, ALPACA, max_devices=1,
                               batch_sizes=[64])
        assert plan.best is None
        assert all(not p.feasible for p in plan.points)

    def test_device_budget_respected(self):
        plan = plan_deployment(GPT3_7B, ALPACA, max_devices=2,
                               batch_sizes=[64])
        assert all(p.devices <= 2 for p in plan.points)

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            plan_deployment(GPT3_7B, ALPACA, max_devices=0)
