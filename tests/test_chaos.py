"""The chaos harness: invariants hold and reports are deterministic."""

import pytest

from repro.api import Session
from repro.faults import chaos_spec, run_chaos, verify_session
from repro.faults.chaos import TERMINAL_STATUSES


class TestChaosSweep:
    def test_three_seeds_no_violations(self):
        report = run_chaos(seeds=3)
        assert report["violations"] == []
        # 3 seeds x grouping {auto, off} x mode {batch, stream}.
        assert len(report["cells"]) == 12

    def test_resilience_paths_actually_exercise(self):
        report = run_chaos(seeds=2)
        totals = {"retries": 0, "faults": 0}
        non_completed = 0
        for cell in report["cells"]:
            totals["retries"] += cell["retries"]
            totals["faults"] += cell["faults"]
            non_completed += (cell["timed_out"] + cell["shed"]
                              + cell["aborted"])
        # The chaos scenario is tuned so faults bite: every sweep must
        # see injected faults, retries, and non-completed terminals.
        assert totals["faults"] > 0
        assert totals["retries"] > 0
        assert non_completed > 0

    def test_report_is_deterministic(self):
        assert run_chaos(seeds=1) == run_chaos(seeds=1)

    def test_invalid_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_chaos(seeds=0)


class TestVerifySession:
    def test_clean_session_has_no_violations(self):
        session = Session(chaos_spec(0))
        session.run()
        assert verify_session(session) == []

    def test_statuses_are_terminal(self):
        session = Session(chaos_spec(1))
        result = session.run()
        assert result.requests
        assert {r["status"] for r in result.requests} <= TERMINAL_STATUSES

    def test_undrained_pool_is_flagged(self):
        session = Session(chaos_spec(0))
        # Run only a few iterations, leaving live requests in the pool.
        session.step()
        session.step()
        problems = verify_session(session)
        assert any("conservation" in p for p in problems)

    def test_chaos_spec_grouping_variants(self):
        for grouping in ("auto", "off"):
            spec = chaos_spec(0, grouping=grouping)
            assert spec.serving.grouping == grouping
            assert spec.faults == "seeded"
