"""Tests for KV-cache preemption (swap / recompute)."""

import pytest

from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B
from repro.serving.paging import PagedKvAllocator, PagedKvConfig
from repro.serving.pool import RequestPool
from repro.serving.preemption import (
    PreemptingAllocatorPool,
    PreemptionCosts,
    RestorePolicy,
    run_with_preemption,
)
from repro.serving.request import InferenceRequest, RequestStatus


def small_allocator(blocks=4):
    block_bytes = 2 * 4096 * 2 * 32 * 16  # one block of GPT3-7B KV
    return PagedKvAllocator(
        PagedKvConfig(block_tokens=16, capacity_bytes=block_bytes * blocks),
        GPT3_7B)


def running_request(rid, seq=16, channel=0, output_len=64):
    request = InferenceRequest(rid, input_len=seq, output_len=output_len,
                               status=RequestStatus.RUNNING, channel=channel)
    return request


class TestPreemptionCosts:
    def test_swap_cycles_linear_in_bytes(self):
        costs = PreemptionCosts(swap_bandwidth=100e9)
        assert costs.swap_cycles(200e9) == pytest.approx(2e9)

    def test_invalid_costs_raise(self):
        with pytest.raises(ValueError):
            PreemptionCosts(swap_bandwidth=0.0)
        with pytest.raises(ValueError):
            PreemptionCosts(recompute_cycles_per_token=0.0)


class TestPreemptingPool:
    def test_grow_without_pressure_no_preemption(self):
        allocator = small_allocator(blocks=8)
        pool = PreemptingAllocatorPool([allocator],
                                       GPT3_7B.kv_bytes_per_token())
        request = running_request(0)
        allocator.allocate(0, request.seq_len)
        assert pool.grow(request, [request])
        assert pool.preemption_count == 0

    def test_grow_preempts_youngest(self):
        allocator = small_allocator(blocks=4)
        pool = PreemptingAllocatorPool([allocator],
                                       GPT3_7B.kv_bytes_per_token())
        old = running_request(0, seq=16)
        young = running_request(1, seq=16)
        for request in (old, young):
            allocator.allocate(request.request_id, request.seq_len)
            pool.note_admission(request)
        # Old request grows to need 3 blocks: young must be evicted.
        old.generated = 33
        assert pool.grow(old, [old, young])
        assert pool.preemption_count == 1
        assert pool.events[0].request_id == 1
        assert young.status is RequestStatus.WAITING

    def test_grow_fails_when_alone_and_too_big(self):
        allocator = small_allocator(blocks=2)
        pool = PreemptingAllocatorPool([allocator],
                                       GPT3_7B.kv_bytes_per_token())
        request = running_request(0, seq=16)
        allocator.allocate(0, 16)
        request.generated = 1000  # needs far more than 2 blocks
        assert not pool.grow(request, [request])

    def test_restore_cost_recompute_scales_with_context(self):
        allocator = small_allocator(blocks=4)
        pool = PreemptingAllocatorPool(
            [allocator], GPT3_7B.kv_bytes_per_token(),
            policy=RestorePolicy.RECOMPUTE,
            costs=PreemptionCosts(recompute_cycles_per_token=100.0))
        victim = running_request(2, seq=50)
        allocator.allocate(2, 50)
        pool.note_admission(victim)
        event = pool.preempt(victim)
        assert event.restore_cost_cycles == pytest.approx(50 * 100.0)
        assert pool.restore_cost(2) == pytest.approx(5000.0)
        assert pool.restore_cost(2) == 0.0  # consumed

    def test_swap_policy_costs_differ_from_recompute(self):
        allocator = small_allocator(blocks=4)
        kv = GPT3_7B.kv_bytes_per_token()
        swap = PreemptingAllocatorPool([allocator], kv,
                                       policy=RestorePolicy.SWAP)
        victim = running_request(3, seq=64)
        allocator.allocate(3, 64)
        event = swap.preempt(victim)
        expected = PreemptionCosts().swap_cycles(64 * kv)
        assert event.restore_cost_cycles == pytest.approx(expected)

    def test_invalid_kv_bytes_raise(self):
        with pytest.raises(ValueError):
            PreemptingAllocatorPool([small_allocator()], 0)


class TestPreemptiveServing:
    def _run(self, blocks, policy):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        requests = [InferenceRequest(i, input_len=24, output_len=24)
                    for i in range(6)]
        allocators = [small_allocator(blocks=blocks)
                      for _ in range(device.channel_pool)]
        return run_with_preemption(
            pool, device, requests, allocators,
            GPT3_7B.kv_bytes_per_token(), policy=policy)

    def test_all_tokens_generated_under_pressure(self):
        cycles, tokens, pool = self._run(blocks=3,
                                         policy=RestorePolicy.RECOMPUTE)
        assert tokens >= 6 * 24  # preempted requests regenerate tokens
        assert cycles > 0

    def test_no_preemptions_with_ample_memory(self):
        _, _, pool = self._run(blocks=64, policy=RestorePolicy.RECOMPUTE)
        assert pool.preemption_count == 0

    def test_memory_pressure_slows_serving(self):
        tight_cycles, _, tight_pool = self._run(
            blocks=3, policy=RestorePolicy.RECOMPUTE)
        ample_cycles, _, _ = self._run(blocks=64,
                                       policy=RestorePolicy.RECOMPUTE)
        if tight_pool.preemption_count > 0:
            assert tight_cycles > ample_cycles
