"""Tests for KV-cache preemption (swap / recompute)."""

import pytest

from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B
from repro.serving.paging import PagedKvAllocator, PagedKvConfig
from repro.serving.pool import RequestPool
from repro.serving.preemption import (
    PreemptingAllocatorPool,
    PreemptionCosts,
    RestorePolicy,
    run_with_preemption,
)
from repro.serving.request import InferenceRequest, RequestStatus


def small_allocator(blocks=4):
    block_bytes = 2 * 4096 * 2 * 32 * 16  # one block of GPT3-7B KV
    return PagedKvAllocator(
        PagedKvConfig(block_tokens=16, capacity_bytes=block_bytes * blocks),
        GPT3_7B)


def running_request(rid, seq=16, channel=0, output_len=64):
    request = InferenceRequest(rid, input_len=seq, output_len=output_len,
                               status=RequestStatus.RUNNING, channel=channel)
    return request


class TestPreemptionCosts:
    def test_swap_cycles_linear_in_bytes(self):
        costs = PreemptionCosts(swap_bandwidth=100e9)
        assert costs.swap_cycles(200e9) == pytest.approx(2e9)

    def test_invalid_costs_raise(self):
        with pytest.raises(ValueError):
            PreemptionCosts(swap_bandwidth=0.0)
        with pytest.raises(ValueError):
            PreemptionCosts(recompute_cycles_per_token=0.0)


class TestPreemptingPool:
    def test_grow_without_pressure_no_preemption(self):
        allocator = small_allocator(blocks=8)
        pool = PreemptingAllocatorPool([allocator],
                                       GPT3_7B.kv_bytes_per_token())
        request = running_request(0)
        allocator.allocate(0, request.seq_len)
        assert pool.grow(request, [request])
        assert pool.preemption_count == 0

    def test_grow_preempts_youngest(self):
        allocator = small_allocator(blocks=4)
        pool = PreemptingAllocatorPool([allocator],
                                       GPT3_7B.kv_bytes_per_token())
        old = running_request(0, seq=16)
        young = running_request(1, seq=16)
        for request in (old, young):
            allocator.allocate(request.request_id, request.seq_len)
            pool.note_admission(request)
        # Old request grows to need 3 blocks: young must be evicted.
        old.generated = 33
        assert pool.grow(old, [old, young])
        assert pool.preemption_count == 1
        assert pool.events[0].request_id == 1
        assert young.status is RequestStatus.WAITING

    def test_grow_fails_when_alone_and_too_big(self):
        allocator = small_allocator(blocks=2)
        pool = PreemptingAllocatorPool([allocator],
                                       GPT3_7B.kv_bytes_per_token())
        request = running_request(0, seq=16)
        allocator.allocate(0, 16)
        request.generated = 1000  # needs far more than 2 blocks
        assert not pool.grow(request, [request])

    def test_restore_cost_recompute_scales_with_context(self):
        allocator = small_allocator(blocks=4)
        pool = PreemptingAllocatorPool(
            [allocator], GPT3_7B.kv_bytes_per_token(),
            policy=RestorePolicy.RECOMPUTE,
            costs=PreemptionCosts(recompute_cycles_per_token=100.0))
        victim = running_request(2, seq=50)
        allocator.allocate(2, 50)
        pool.note_admission(victim)
        event = pool.preempt(victim)
        assert event.restore_cost_cycles == pytest.approx(50 * 100.0)
        assert pool.restore_cost(2) == pytest.approx(5000.0)
        assert pool.restore_cost(2) == 0.0  # consumed

    def test_swap_policy_costs_differ_from_recompute(self):
        allocator = small_allocator(blocks=4)
        kv = GPT3_7B.kv_bytes_per_token()
        swap = PreemptingAllocatorPool([allocator], kv,
                                       policy=RestorePolicy.SWAP)
        victim = running_request(3, seq=64)
        allocator.allocate(3, 64)
        event = swap.preempt(victim)
        expected = PreemptionCosts().swap_cycles(64 * kv)
        assert event.restore_cost_cycles == pytest.approx(expected)

    def test_invalid_kv_bytes_raise(self):
        with pytest.raises(ValueError):
            PreemptingAllocatorPool([small_allocator()], 0)


class TestPreemptiveServing:
    def _run(self, blocks, policy):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        requests = [InferenceRequest(i, input_len=24, output_len=24)
                    for i in range(6)]
        allocators = [small_allocator(blocks=blocks)
                      for _ in range(device.channel_pool)]
        return run_with_preemption(
            pool, device, requests, allocators,
            GPT3_7B.kv_bytes_per_token(), policy=policy)

    def test_all_tokens_generated_under_pressure(self):
        cycles, tokens, pool = self._run(blocks=3,
                                         policy=RestorePolicy.RECOMPUTE)
        assert tokens >= 6 * 24  # preempted requests regenerate tokens
        assert cycles > 0

    def test_no_preemptions_with_ample_memory(self):
        _, _, pool = self._run(blocks=64, policy=RestorePolicy.RECOMPUTE)
        assert pool.preemption_count == 0

    def test_memory_pressure_slows_serving(self):
        tight_cycles, _, tight_pool = self._run(
            blocks=3, policy=RestorePolicy.RECOMPUTE)
        ample_cycles, _, _ = self._run(blocks=64,
                                       policy=RestorePolicy.RECOMPUTE)
        if tight_pool.preemption_count > 0:
            assert tight_cycles > ample_cycles


class TestResilientReadmission:
    """Preemption + re-admission through the resilience retry path.

    A randomized Poisson-style trace under a deliberately tight KV
    budget forces mid-generation OOM; the scheduler must preempt the
    victim through :class:`PreemptingAllocatorPool`, detach it cleanly
    from the pool (observer removed on evict, reattached on resubmit)
    and re-admit it without ever double-allocating a block.
    """

    def _run_randomized(self, seed):
        import random

        from repro.faults import ResiliencePolicy, ResilienceRuntime
        from repro.serving.events import RequestRetried
        from repro.serving.scheduler import IterationScheduler
        from repro.sim.events import EventBus

        rng = random.Random(seed)
        requests = []
        clock = 0.0
        for rid in range(8):
            clock += rng.expovariate(1.0 / 2000.0)
            requests.append(InferenceRequest(
                rid, input_len=rng.randint(12, 24),
                output_len=rng.randint(24, 48), arrival_time=clock))
        allocator = small_allocator(blocks=8)
        preempting = PreemptingAllocatorPool(
            [allocator], GPT3_7B.kv_bytes_per_token())
        runtime = ResilienceRuntime(
            ResiliencePolicy(max_retries=100,
                             retry_backoff_cycles=500.0),
            preempting=preempting)
        pool = RequestPool()
        pool.submit_all(requests)
        bus = EventBus()
        observer_checks = []

        def on_retry(event):
            # By emission time the victim is back in the pool: evict
            # detached the old observer, submit reattached a fresh one.
            victim = pool.get(event.request_id)
            observer_checks.append(
                "_status_observer" in victim.__dict__
                and victim.status is RequestStatus.WAITING)
            assert allocator.ledger_consistent()

        bus.subscribe(RequestRetried, on_retry)
        scheduler = IterationScheduler(
            pool, lambda batch: 1000.0, max_batch_size=4,
            allocators=[allocator], events=bus, resilience=runtime)
        scheduler.run(max_iterations=5000)
        return scheduler, runtime, preempting, allocator, observer_checks

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pressure_retries_then_drains_cleanly(self, seed):
        scheduler, runtime, preempting, allocator, checks = \
            self._run_randomized(seed)
        # The tight budget must actually bite, and every retry event
        # must have seen a reattached observer on a WAITING victim.
        assert runtime.counters["retries"] > 0
        assert preempting.preemption_count > 0
        assert checks and all(checks)
        # Conservation: everything completes, no block leaks, ledger
        # consistent (double allocation would corrupt it).
        assert len(scheduler.pool) == 0
        assert set(scheduler.outcomes.values()) == {"completed"}
        assert allocator.ledger_consistent()
        assert allocator.used_blocks == 0

    def test_evict_detaches_and_resubmit_reattaches(self):
        pool = RequestPool()
        request = InferenceRequest(0, input_len=8, output_len=8)
        pool.submit(request)
        assert "_status_observer" in request.__dict__
        pool.evict(0)
        assert "_status_observer" not in request.__dict__
        pool.submit(request)
        assert "_status_observer" in request.__dict__
