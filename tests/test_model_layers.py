"""Unit tests for decoder-block operator accounting."""

import pytest

from repro.model.layers import (
    GemmShape,
    GemvShape,
    OpKind,
    attend_gemv,
    decoder_block_operators,
    ffn_gemms,
    logit_gemv,
    projection_gemm,
    qkv_generation_gemm,
    softmax_flops,
    total_bytes,
    total_flops,
)
from repro.model.spec import GPT3_7B


class TestShapes:
    def test_gemm_flops(self):
        gemm = GemmShape(m=2, k=3, n=4)
        assert gemm.flops == 2 * 2 * 3 * 4

    def test_gemm_bytes_include_weights(self):
        gemm = GemmShape(m=2, k=3, n=4)
        expected = (2 * 3 + 2 * 4 + 3 * 4) * 2
        assert gemm.bytes_moved(2) == expected

    def test_gemm_weight_resident_drops_weight_bytes(self):
        gemm = GemmShape(m=2, k=3, n=4)
        assert gemm.bytes_moved(2, weight_resident=True) == (2 * 3 + 2 * 4) * 2

    def test_gemm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GemmShape(m=0, k=1, n=1)

    def test_gemv_flops(self):
        assert GemvShape(rows=8, cols=4).flops == 64

    def test_gemv_bytes_dominated_by_matrix(self):
        gemv = GemvShape(rows=100, cols=100)
        assert gemv.bytes_moved(2) == (100 * 100 + 200) * 2

    def test_gemv_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GemvShape(rows=1, cols=0)


class TestOperatorBuilders:
    def test_qkv_shape(self):
        gemm = qkv_generation_gemm(GPT3_7B, batch_tokens=16)
        assert (gemm.m, gemm.k, gemm.n) == (16, 4096, 3 * 4096)

    def test_qkv_tp_shards_output(self):
        gemm = qkv_generation_gemm(GPT3_7B, batch_tokens=16, tp=4)
        assert gemm.n == 3 * 4096 // 4

    def test_projection_shape(self):
        gemm = projection_gemm(GPT3_7B, batch_tokens=8)
        assert (gemm.m, gemm.k, gemm.n) == (8, 4096, 4096)

    def test_projection_tp_shards_input(self):
        gemm = projection_gemm(GPT3_7B, batch_tokens=8, tp=4)
        assert gemm.k == 1024

    def test_ffn_shapes(self):
        ffn1, ffn2 = ffn_gemms(GPT3_7B, batch_tokens=4)
        assert (ffn1.k, ffn1.n) == (4096, 16384)
        assert (ffn2.k, ffn2.n) == (16384, 4096)

    def test_ffn_tp_shards_inner(self):
        ffn1, ffn2 = ffn_gemms(GPT3_7B, batch_tokens=4, tp=4)
        assert ffn1.n == 4096
        assert ffn2.k == 4096

    def test_logit_gemv_rows_scale_with_seq_and_heads(self):
        gemv = logit_gemv(GPT3_7B, seq_len=100)
        assert gemv.rows == 100 * 32
        assert gemv.cols == 128

    def test_attend_gemv_cols_scale_with_seq(self):
        gemv = attend_gemv(GPT3_7B, seq_len=100)
        assert gemv.rows == 128 * 32
        assert gemv.cols == 100

    def test_softmax_flops_positive(self):
        assert softmax_flops(GPT3_7B, 100) == 5 * 32 * 100


class TestDecoderBlock:
    def test_generation_operator_set(self):
        ops = decoder_block_operators(GPT3_7B, [10, 20])
        names = [op.name for op in ops]
        assert names[0] == "qkv_generation"
        assert "logit[0]" in names and "attend[1]" in names
        assert "softmax[0]" in names
        assert names[-2:] == ["ffn1", "ffn2"]

    def test_generation_has_one_gemv_pair_per_request(self):
        ops = decoder_block_operators(GPT3_7B, [10] * 5)
        gemvs = [op for op in ops if op.kind is OpKind.GEMV]
        assert len(gemvs) == 10  # logit + attend per request

    def test_summarization_uses_gemm_attention(self):
        ops = decoder_block_operators(GPT3_7B, [10, 20],
                                      phase="summarization")
        assert all(op.kind is not OpKind.GEMV for op in ops)

    def test_summarization_batch_tokens_sum(self):
        ops = decoder_block_operators(GPT3_7B, [10, 20],
                                      phase="summarization")
        qkv = ops[0]
        # m = 30 tokens: flops = 2 * 30 * E * 3E
        assert qkv.flops == 2 * 30 * 4096 * 3 * 4096

    def test_gemv_flops_scale_linearly_with_seq(self):
        short = decoder_block_operators(GPT3_7B, [64])
        long = decoder_block_operators(GPT3_7B, [128])
        logit_s = next(op for op in short if op.name == "logit[0]")
        logit_l = next(op for op in long if op.name == "logit[0]")
        assert logit_l.flops == 2 * logit_s.flops

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            decoder_block_operators(GPT3_7B, [])

    def test_nonpositive_seq_raises(self):
        with pytest.raises(ValueError):
            decoder_block_operators(GPT3_7B, [0])

    def test_unknown_phase_raises(self):
        with pytest.raises(ValueError):
            decoder_block_operators(GPT3_7B, [1], phase="training")

    def test_arithmetic_intensity_gemm_exceeds_gemv(self):
        """The core Figure 4 observation: batched GEMMs have much higher
        arithmetic intensity than the MHA GEMVs."""
        ops = decoder_block_operators(GPT3_7B, [256] * 64)
        qkv = next(op for op in ops if op.name == "qkv_generation")
        logit = next(op for op in ops if op.name == "logit[0]")
        assert qkv.arithmetic_intensity > 10 * logit.arithmetic_intensity

    def test_gemv_intensity_near_one(self):
        """GEMVs read every matrix byte once: intensity ~ 1 FLOP/byte."""
        ops = decoder_block_operators(GPT3_7B, [512])
        logit = next(op for op in ops if op.name == "logit[0]")
        assert 0.5 < logit.arithmetic_intensity < 2.0

    def test_totals_sum_over_ops(self):
        ops = decoder_block_operators(GPT3_7B, [10])
        assert total_flops(ops) == sum(op.flops for op in ops)
        assert total_bytes(ops) == sum(op.bytes_moved for op in ops)

    def test_request_index_set_only_for_per_request_ops(self):
        ops = decoder_block_operators(GPT3_7B, [10, 10])
        for op in ops:
            if op.name in ("qkv_generation", "projection", "ffn1", "ffn2"):
                assert op.request_index is None
            else:
                assert op.request_index in (0, 1)
