#!/usr/bin/env python3
"""Latency analysis: TTFT/TPOT percentiles and SLO attainment.

Serves streaming ShareGPT traffic on NeuPIMs and on the naive NPU+PIM
baseline: one ``ScenarioSpec`` describes the Poisson workload and the
serving knobs, and each system's ``Session`` materializes the
iteration-level scheduler with a latency tracker.  NeuPIMs' faster
iterations translate into lower time-per-token and better SLO
attainment at the same arrival rate.

Run:  python examples/latency_slo.py
"""

from repro.analysis.report import format_table
from repro.api import ScenarioSpec, ServingSpec, Session, TrafficSpec


def build_base() -> ScenarioSpec:
    """The shared workload: streaming ShareGPT at a fixed arrival rate."""
    return ScenarioSpec(
        model="gpt3-7b",
        tp=4,
        layers_resident=8,
        traffic=TrafficSpec.poisson(dataset="sharegpt", rate_per_kcycle=0.05,
                                    horizon_cycles=5e6, seed=3,
                                    max_requests=128),
        serving=ServingSpec(max_batch_size=128, paged_kv=False,
                            load_tracker=False),
    )


def main() -> None:
    base = build_base()
    tpot_slo_ms = 1.2  # 1.2 ms/token at the 1 GHz model clock
    rows = []
    for name, system in (("NeuPIMs", "neupims"), ("NPU+PIM", "npu-pim")):
        session = Session(base.override(system=system))
        result = session.run()
        report = session.latency_tracker.report()
        summary = result.latency_ms
        attainment = report.slo_attainment(tpot_cycles=tpot_slo_ms * 1e6)
        rows.append((
            name,
            round(summary["ttft_p50_ms"], 2),
            round(summary["tpot_p50_ms"], 3),
            round(summary["tpot_p99_ms"], 3),
            round(summary["end_to_end_p99_ms"], 1),
            f"{attainment:.0%}",
            round(result.tokens_per_second / 1e3, 1),
        ))

    print(format_table(
        ["system", "TTFT p50 (ms)", "TPOT p50 (ms)", "TPOT p99 (ms)",
         "E2E p99 (ms)", f"TPOT<{tpot_slo_ms}ms", "k tokens/s"],
        rows, title="Latency under streaming ShareGPT traffic (GPT3-7B)"))

    print("\nIteration-level scheduling admits each arrival at the next")
    print("iteration boundary; NeuPIMs' shorter iterations cut both the")
    print("admission wait and the per-token pacing.")


if __name__ == "__main__":
    main()
