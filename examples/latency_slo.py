#!/usr/bin/env python3
"""Latency analysis: TTFT/TPOT percentiles and SLO attainment.

Serves streaming ShareGPT traffic on NeuPIMs and on the naive NPU+PIM
baseline, tracking per-request latency through the iteration-level
scheduler: NeuPIMs' faster iterations translate into lower time-per-token
and better SLO attainment at the same arrival rate.

Run:  python examples/latency_slo.py
"""

from repro.analysis.report import format_table
from repro.baselines.npu_pim import naive_npu_pim_device
from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B
from repro.serving.latency import LatencyTracker
from repro.serving.pool import RequestPool
from repro.serving.scheduler import IterationScheduler
from repro.serving.trace import SHAREGPT, poisson_arrivals


def serve(device, arrivals):
    pool = RequestPool()
    pool.submit_all(arrivals)
    tracker = LatencyTracker()
    scheduler = IterationScheduler(
        pool, tracker.wrap(device.executor()), max_batch_size=128,
        assign_channels=device.assign_channels)
    stats = scheduler.run()
    return tracker.report(), stats


def fresh_arrivals():
    return poisson_arrivals(SHAREGPT, rate_per_kcycle=0.05,
                            horizon_cycles=5e6, seed=3)[:128]


def main() -> None:
    spec = GPT3_7B
    systems = {
        "NeuPIMs": NeuPimsDevice(spec, tp=4, layers_resident=8),
        "NPU+PIM": naive_npu_pim_device(spec, tp=4, layers_resident=8),
    }

    tpot_slo_ms = 1.2  # 1.2 ms/token at the 1 GHz model clock
    rows = []
    for name, device in systems.items():
        report, stats = serve(device, fresh_arrivals())
        summary = report.summary()
        attainment = report.slo_attainment(tpot_cycles=tpot_slo_ms * 1e6)
        rows.append((
            name,
            round(summary["ttft_p50_ms"], 2),
            round(summary["tpot_p50_ms"], 3),
            round(summary["tpot_p99_ms"], 3),
            round(summary["end_to_end_p99_ms"], 1),
            f"{attainment:.0%}",
            round(stats.throughput_tokens_per_second() / 1e3, 1),
        ))

    print(format_table(
        ["system", "TTFT p50 (ms)", "TPOT p50 (ms)", "TPOT p99 (ms)",
         "E2E p99 (ms)", f"TPOT<{tpot_slo_ms}ms", "k tokens/s"],
        rows, title="Latency under streaming ShareGPT traffic (GPT3-7B)"))

    print("\nIteration-level scheduling admits each arrival at the next")
    print("iteration boundary; NeuPIMs' shorter iterations cut both the")
    print("admission wait and the per-token pacing.")


if __name__ == "__main__":
    main()
