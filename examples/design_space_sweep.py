#!/usr/bin/env python3
"""Design-space sweep: batch sizes, datasets and parallelism schemes.

Reproduces the decision surface a deployment would care about: how the
four systems compare across batch sizes on both datasets (Figure 12), and
how tensor vs pipeline parallelism trade off at a fixed request count
(Figure 14).

Run:  python examples/design_space_sweep.py
"""

from repro.analysis.metrics import compare_systems
from repro.analysis.report import format_table
from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.model.spec import GPT3_7B, GPT3_30B
from repro.serving.trace import ALPACA, SHAREGPT, warmed_batch


def throughput_sweep() -> None:
    spec = GPT3_7B
    print(f"== throughput sweep ({spec.name}, TP=4) ==\n")
    for trace in (ALPACA, SHAREGPT):
        rows = []
        for batch_size in (64, 128, 256, 512):
            results = compare_systems(spec, trace, batch_size, tp=4,
                                      layers_resident=8, num_batches=3)
            npu = results["NPU-only"].tokens_per_second
            rows.append((
                batch_size,
                round(results["GPU-only"].tokens_per_second / npu, 2),
                1.0,
                round(results["NPU+PIM"].tokens_per_second / npu, 2),
                round(results["NeuPIMs"].tokens_per_second / npu, 2),
            ))
        print(format_table(
            ["batch", "GPU-only", "NPU-only", "NPU+PIM", "NeuPIMs"],
            rows, title=f"normalized throughput — {trace.name}"))
        print()


def parallelism_sweep() -> None:
    spec = GPT3_30B
    total_requests = 256
    print(f"== parallelism sweep ({spec.name}, {total_requests} requests) ==\n")
    rows = []
    for tp, pp in ((4, 1), (2, 2), (8, 1), (4, 2), (8, 2), (4, 4)):
        if spec.num_heads % tp:
            continue
        system = NeuPimsSystem(spec, ParallelismScheme(tp, pp))
        batch = warmed_batch(SHAREGPT, total_requests, seed=0)
        tokens_per_s = system.throughput_tokens_per_second(batch)
        rows.append((f"(TP={tp}, PP={pp})", tp * pp,
                     round(tokens_per_s / 1e3, 1)))
    print(format_table(["scheme", "devices", "throughput (k tokens/s)"],
                       rows))
    print("\nTP-heavy schemes keep the per-device batch large, matching the")
    print("paper's preference for tensor over pipeline parallelism (§7).")


def main() -> None:
    throughput_sweep()
    parallelism_sweep()


if __name__ == "__main__":
    main()
