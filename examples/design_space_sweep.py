#!/usr/bin/env python3
"""Design-space sweep: batch sizes, datasets and parallelism schemes.

Reproduces the decision surface a deployment would care about: how the
four systems compare across batch sizes on both datasets (Figure 12), and
how tensor vs pipeline parallelism trade off at a fixed request count
(Figure 14).  Both grids are expressed through the ``repro.api`` front
door: one base ``ScenarioSpec`` plus axis overrides, fanned across
workers by ``scenario_sweep`` / ``run_scenarios``.

Run:  python examples/design_space_sweep.py [--workers N]

Parallel usage
--------------
Every sweep point is an independent scenario, and ``ScenarioSpec`` is
picklable by construction, so the grids shard across a process pool
through ``repro.exec``: pass ``--workers 4`` and the sweep runs on 4
worker processes with chunked dispatch and warm per-worker caches.
Results are **record-for-record identical** to the serial run — the
merge is deterministic — so parallelism is purely a wall-clock knob; it
pays off once per-cell simulation time dominates the ~100 ms pool
startup (large grids, big batches, many sampled batches per cell).
"""

import argparse

from repro.analysis.report import format_table
from repro.analysis.sweep import SweepAxis, scenario_sweep
from repro.api import ScenarioSpec, TrafficSpec, run_scenarios
from repro.model.spec import get_model


def throughput_sweep(workers: int) -> None:
    """The Figure 12 grid: system x dataset x batch size."""
    base = ScenarioSpec(
        model="gpt3-7b", tp=4, layers_resident=8, fidelity="analytic",
        traffic=TrafficSpec.warmed(batch_size=64, num_batches=3))
    print(f"== throughput sweep ({base.resolve_model().name}, TP=4) ==\n")
    sweep = scenario_sweep(
        base,
        [SweepAxis("dataset", ["alpaca", "sharegpt"]),
         SweepAxis("batch_size", [64, 128, 256, 512]),
         SweepAxis("system", ["gpu-only", "npu-only", "npu-pim", "neupims"])],
        metrics=("tokens_per_second",),
        parallel=workers if workers > 1 else None)
    for dataset in ("alpaca", "sharegpt"):
        rows = []
        for batch_size in (64, 128, 256, 512):
            cell = sweep.filter(dataset=dataset, batch_size=batch_size)
            by_system = {r["system"]: r["tokens_per_second"]
                         for r in cell.records}
            npu = by_system["npu-only"]
            rows.append((
                batch_size,
                round(by_system["gpu-only"] / npu, 2),
                1.0,
                round(by_system["npu-pim"] / npu, 2),
                round(by_system["neupims"] / npu, 2),
            ))
        print(format_table(
            ["batch", "GPU-only", "NPU-only", "NPU+PIM", "NeuPIMs"],
            rows, title=f"normalized throughput — {dataset}"))
        print()


def parallelism_sweep(workers: int) -> None:
    """The Figure 14 trade-off: (TP, PP) at a fixed request count."""
    model = "gpt3-30b"
    total_requests = 256
    print(f"== parallelism sweep ({model}, {total_requests} requests) ==\n")
    num_heads = get_model(model).num_heads
    schemes = [(tp, pp) for tp, pp in ((4, 1), (2, 2), (8, 1), (4, 2),
                                       (8, 2), (4, 4))
               if num_heads % tp == 0]
    specs = [
        ScenarioSpec(model=model, tp=tp, pp=pp, fidelity="analytic",
                     traffic=TrafficSpec.warmed(batch_size=total_requests,
                                                seed=0))
        for tp, pp in schemes
    ]
    results = run_scenarios(specs, parallel=workers if workers > 1 else None)
    rows = [
        (f"(TP={tp}, PP={pp})", tp * pp,
         round(result.tokens_per_second / 1e3, 1))
        for (tp, pp), result in zip(schemes, results)
    ]
    print(format_table(["scheme", "devices", "throughput (k tokens/s)"],
                       rows))
    print("\nTP-heavy schemes keep the per-device batch large, matching the")
    print("paper's preference for tensor over pipeline parallelism (§7).")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool workers for the scenario grids "
                             "(1 = serial; identical records either way)")
    args = parser.parse_args()
    throughput_sweep(args.workers)
    parallelism_sweep(args.workers)


if __name__ == "__main__":
    main()
