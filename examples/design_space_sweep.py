#!/usr/bin/env python3
"""Design-space sweep: batch sizes, datasets and parallelism schemes.

Reproduces the decision surface a deployment would care about: how the
four systems compare across batch sizes on both datasets (Figure 12), and
how tensor vs pipeline parallelism trade off at a fixed request count
(Figure 14).

Run:  python examples/design_space_sweep.py [--workers N]

Parallel usage
--------------
Every sweep point is an independent simulation, so the grids shard
across a process pool through ``repro.exec``: pass ``--workers 4`` (or
call ``run_sweep(..., parallel=4)`` from your own code) and the sweep
runs on 4 worker processes with chunked dispatch and warm per-worker
caches.  Results are **record-for-record identical** to the serial run —
the merge is deterministic — so parallelism is purely a wall-clock knob;
it pays off once per-cell simulation time dominates the ~100 ms pool
startup (large grids, big batches, many sampled batches per cell).
"""

import argparse

from repro.analysis.metrics import compare_systems
from repro.analysis.report import format_table
from repro.analysis.sweep import SweepAxis, run_sweep
from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.model.spec import GPT3_7B, GPT3_30B
from repro.serving.trace import ALPACA, SHAREGPT, get_dataset, warmed_batch


def _evaluate_throughput_point(dataset: str, batch_size: int):
    """One Figure 12 cell (module level so process workers can run it)."""
    results = compare_systems(GPT3_7B, get_dataset(dataset), batch_size,
                              tp=4, layers_resident=8, num_batches=3)
    npu = results["NPU-only"].tokens_per_second
    return {
        "gpu_norm": round(results["GPU-only"].tokens_per_second / npu, 2),
        "npu_pim_norm": round(results["NPU+PIM"].tokens_per_second / npu, 2),
        "neupims_norm": round(results["NeuPIMs"].tokens_per_second / npu, 2),
    }


def throughput_sweep(workers: int) -> None:
    spec = GPT3_7B
    print(f"== throughput sweep ({spec.name}, TP=4) ==\n")
    sweep = run_sweep(
        [SweepAxis("dataset", [ALPACA.name, SHAREGPT.name]),
         SweepAxis("batch_size", [64, 128, 256, 512])],
        _evaluate_throughput_point,
        parallel=workers if workers > 1 else None)
    for trace in (ALPACA, SHAREGPT):
        rows = [(r["batch_size"], r["gpu_norm"], 1.0, r["npu_pim_norm"],
                 r["neupims_norm"])
                for r in sweep.filter(dataset=trace.name).records]
        print(format_table(
            ["batch", "GPU-only", "NPU-only", "NPU+PIM", "NeuPIMs"],
            rows, title=f"normalized throughput — {trace.name}"))
        print()


def parallelism_sweep() -> None:
    spec = GPT3_30B
    total_requests = 256
    print(f"== parallelism sweep ({spec.name}, {total_requests} requests) ==\n")
    rows = []
    for tp, pp in ((4, 1), (2, 2), (8, 1), (4, 2), (8, 2), (4, 4)):
        if spec.num_heads % tp:
            continue
        system = NeuPimsSystem(spec, ParallelismScheme(tp, pp))
        batch = warmed_batch(SHAREGPT, total_requests, seed=0)
        tokens_per_s = system.throughput_tokens_per_second(batch)
        rows.append((f"(TP={tp}, PP={pp})", tp * pp,
                     round(tokens_per_s / 1e3, 1)))
    print(format_table(["scheme", "devices", "throughput (k tokens/s)"],
                       rows))
    print("\nTP-heavy schemes keep the per-device batch large, matching the")
    print("paper's preference for tensor over pipeline parallelism (§7).")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool workers for the throughput grid "
                             "(1 = serial; identical records either way)")
    args = parser.parse_args()
    throughput_sweep(args.workers)
    parallelism_sweep()


if __name__ == "__main__":
    main()
