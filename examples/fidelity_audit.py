#!/usr/bin/env python3
"""Fidelity audit: refute the analytic tier, then let it earn "auto".

Runs the cross-fidelity refutation harness over the hardware-region x
sequence-length grid (``repro.counters.refute``): every cell predicts
the typed counter vector arithmetically from the shared GEMV geometry,
measures the same counters from the command-level simulation, and diffs
the two against per-counter tolerance bounds.  The per-counter drift
table below is the audit; the emitted
:class:`~repro.counters.profile.FidelityProfile` is the verdict — the
payload ``fidelity="auto"`` consults to run analytic where the model
survived and cycle where it was refuted.

The second half closes the loop: the same serving scenario runs once at
``fidelity="cycle"`` and once at ``fidelity="auto"`` carrying the fresh
profile, with typed counters attached to both.

Run:  python examples/fidelity_audit.py
"""

from repro.analysis.report import format_table
from repro.api import ScenarioSpec, Session, TrafficSpec
from repro.counters.refute import run_refute


def drift_table(report) -> str:
    """Per-counter drift rows for every refuted cell of one region."""
    rows = []
    for cell in report["cells"]:
        for name, entry in cell["counters"].items():
            rows.append((cell["region"], cell["seq_len"], cell["op"],
                         name.split(".", 1)[1],
                         round(entry["predicted"], 1),
                         round(entry["measured"], 1),
                         f"{entry['drift']:.3f}"))
    return format_table(
        ["region", "seq_len", "op", "counter", "predicted", "measured",
         "drift"],
        rows, title=f"cross-fidelity counter drift "
                    f"({report['model']}, {len(report['cells'])} cells)")


def main() -> None:
    report = run_refute(seq_lens=(128, 512))
    print(drift_table(report))

    verdict = "all regions within bounds" if report["passed"] else \
        f"{len(report['violations'])} violation(s)"
    print(f"\nrefutation verdict: {verdict}")
    print(f"emitted profile: {report['profile']}")

    traffic = TrafficSpec(kind="poisson", max_requests=8,
                          horizon_cycles=5e6, seed=3)
    cycle = Session(ScenarioSpec(model="gpt3-7b", fidelity="cycle",
                                 counters="typed", traffic=traffic)).run()
    auto = Session(ScenarioSpec(
        model="gpt3-7b", fidelity="auto", counters="typed",
        fidelity_options={"profile": report["profile"]},
        traffic=traffic)).run()

    rows = [
        ("resolved fidelity", cycle.fidelity, auto.fidelity),
        ("TTFT p50 (ms)",
         round(cycle.latency_ms.get("ttft_p50_ms", 0.0), 2),
         round(auto.latency_ms.get("ttft_p50_ms", 0.0), 2)),
        ("end-to-end p99 (ms)",
         round(cycle.latency_ms.get("end_to_end_p99_ms", 0.0), 2),
         round(auto.latency_ms.get("end_to_end_p99_ms", 0.0), 2)),
        ("tokens/s", round(cycle.tokens_per_second),
         round(auto.tokens_per_second)),
        ("GEMV issue slots", round(cycle.counters.get(
            "pim.gemv_issue_slots")), round(auto.counters.get(
                "pim.gemv_issue_slots"))),
        ("KV page churn", round(cycle.counters.get("kv.page_churn")),
         round(auto.counters.get("kv.page_churn"))),
    ]
    print()
    print(format_table(
        ["metric", "fidelity=cycle", "fidelity=auto (profiled)"],
        rows, title="profile-guided fidelity on one serving scenario"))
    print("\nWhere the refutation grid could not refute the analytic")
    print("tier, fidelity='auto' keeps its speed; a refuted region")
    print("would have been pinned to cycle fidelity in the profile.")


if __name__ == "__main__":
    main()
