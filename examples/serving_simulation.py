#!/usr/bin/env python3
"""Inference-serving simulation: the full NeuPIMs system stack.

Drives the Orca-style iteration-level scheduler with streaming Poisson
arrivals from the Alpaca trace: requests enter the pool, are placed onto
PIM channels by greedy min-load bin packing (Algorithm 2), get paged KV
allocations (vLLM-style), and generate tokens iteration by iteration on
the NeuPIMs device until they complete.

Run:  python examples/serving_simulation.py
"""

from repro.analysis.report import format_table
from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B
from repro.serving.paging import PagedKvAllocator, PagedKvConfig
from repro.serving.pool import RequestPool
from repro.serving.scheduler import IterationScheduler
from repro.serving.trace import ALPACA, poisson_arrivals


def main() -> None:
    spec = GPT3_7B
    device = NeuPimsDevice(spec, tp=spec.tensor_parallel, layers_resident=8)

    arrivals = poisson_arrivals(ALPACA, rate_per_kcycle=0.02,
                                horizon_cycles=2e7, seed=7)[:48]
    print(f"submitting {len(arrivals)} streaming requests "
          f"(Alpaca lengths, Poisson arrivals)\n")

    pool = RequestPool()
    pool.submit_all(arrivals)
    allocators = [
        PagedKvAllocator(PagedKvConfig(capacity_bytes=1 << 28), spec,
                         layers_resident=device.layers)
        for _ in range(device.channel_pool)
    ]
    # Live per-channel load tracking: admission bin-packing starts from
    # the resident set's current loads (Algorithm 2's initial loads)
    # instead of assuming idle channels — placements and serving numbers
    # differ from the untracked wiring.
    tracker = device.attach_load_tracker()
    scheduler = IterationScheduler(
        pool, device.executor(), max_batch_size=16,
        allocators=allocators, assign_channels=device.assign_channels,
        load_tracker=tracker)

    # Peek at the pool table mid-run (Figure 7's request pool view).
    for _ in range(4):
        scheduler.run_iteration()
    print("request pool after 4 iterations:")
    print(pool.format_table(limit=10))
    print("...")

    stats = scheduler.run()

    print()
    iterations = stats.iterations
    batch_sizes = [r.batch_size for r in iterations]
    rows = [
        ("iterations executed", len(iterations)),
        ("tokens generated", stats.total_tokens),
        ("simulated time (ms)", round(stats.total_time / 1e6, 2)),
        ("throughput (tokens/s)",
         round(stats.throughput_tokens_per_second())),
        ("mean batch size", round(sum(batch_sizes) / len(batch_sizes), 1)),
        ("max batch size", max(batch_sizes)),
    ]
    print(format_table(["metric", "value"], rows, title="serving summary"))


if __name__ == "__main__":
    main()
