#!/usr/bin/env python3
"""Inference-serving simulation: the full NeuPIMs system stack.

Drives the Orca-style iteration-level scheduler with streaming Poisson
arrivals from the Alpaca trace: requests enter the pool, are placed onto
PIM channels by greedy min-load bin packing (Algorithm 2), get paged KV
allocations (vLLM-style), and generate tokens iteration by iteration on
the NeuPIMs device until they complete.

The whole stack is declared by one ``ScenarioSpec`` and materialized by a
``Session`` (see ``repro.api``): pool, per-channel allocators, load
tracker and scheduler come from the spec, and the run returns the uniform
``RunResult``.  The numbers are identical to the pre-API hand wiring
(pinned by ``tests/test_api_session.py``).

Run:  python examples/serving_simulation.py
"""

from repro.analysis.report import format_table
from repro.api import ScenarioSpec, Session, TrafficSpec


def build_scenario() -> ScenarioSpec:
    """The declarative description of this serving experiment."""
    return ScenarioSpec(
        model="gpt3-7b",
        system="neupims",
        layers_resident=8,
        traffic=TrafficSpec.poisson(dataset="alpaca", rate_per_kcycle=0.02,
                                    horizon_cycles=2e7, seed=7,
                                    max_requests=48),
        # serving defaults: batch cap 16, paged KV (256 MB/channel),
        # live channel-load tracking for Algorithm-2 admission
    )


def main() -> None:
    session = Session(build_scenario()).materialize()
    print(f"submitting {len(session.arrivals)} streaming requests "
          f"(Alpaca lengths, Poisson arrivals)\n")

    # Peek at the pool table mid-run (Figure 7's request pool view).
    # The equivalence-class engine (serving spec knob ``grouping``,
    # default "auto") defers per-request bookkeeping inside steady-state
    # windows, so materialize any deferred state before inspecting.
    for _ in range(4):
        session.scheduler.run_iteration()
    session.scheduler.sync_grouped()
    print("request pool after 4 iterations:")
    print(session.pool.format_table(limit=10))
    print("...")

    result = session.run()  # finishes the remaining iterations

    print()
    rows = [
        ("iterations executed", result.iterations),
        ("tokens generated", result.total_tokens),
        ("simulated time (ms)", round(result.total_time_cycles / 1e6, 2)),
        ("throughput (tokens/s)", round(result.tokens_per_second)),
        ("mean batch size", round(result.mean_batch_size, 1)),
        ("max batch size", result.max_batch_size),
    ]
    print(format_table(["metric", "value"], rows, title="serving summary"))


if __name__ == "__main__":
    main()
