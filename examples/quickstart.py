#!/usr/bin/env python3
"""Quickstart: run one batched-inference iteration on NeuPIMs.

Declares two scenarios through the ``repro.api`` front door — the full
NeuPIMs system and the naive NPU+PIM baseline on the same warmed
GPT3-13B ShareGPT batch — runs each through a ``Session``, and compares
throughput and utilization: the paper's headline experiment in
miniature.  Swap ``fidelity="analytic"`` for ``"cycle"`` to calibrate
the Algorithm-1 latency constants from the command-level DRAM
simulation instead.

Run:  python examples/quickstart.py
"""

from repro.analysis.report import format_table
from repro.api import ScenarioSpec, Session, TrafficSpec


def main() -> None:
    base = ScenarioSpec(
        model="gpt3-13b",
        traffic=TrafficSpec.warmed(dataset="sharegpt", batch_size=256,
                                   seed=42),
        fidelity="analytic",
    )
    scenarios = [
        ("NPU+PIM (naive)", base.override(system="npu-pim")),
        ("NeuPIMs", base.override(system="neupims")),
    ]

    rows = []
    for name, spec in scenarios:
        result = Session(spec).run()
        rows.append((
            name,
            round(result.mean_iteration_cycles / 1e3, 1),
            round(result.tokens_per_second),
            f"{result.utilization['npu']:.1%}",
            f"{result.utilization['pim']:.1%}",
        ))

    model = base.resolve_model()
    print(format_table(
        ["system", "iteration (us)", "tokens/s", "NPU util", "PIM util"],
        rows,
        title=f"{model.name}, batch {base.traffic.batch_size}, "
              f"ShareGPT lengths"))

    speedup = rows[0][1] / rows[1][1]
    print(f"\nNeuPIMs speedup over naive NPU+PIM: {speedup:.2f}x")
    print("(paper reports 1.6x on average, up to 3x at large batch)")


if __name__ == "__main__":
    main()
