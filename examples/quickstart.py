#!/usr/bin/env python3
"""Quickstart: run one batched-inference iteration on NeuPIMs.

Builds a GPT3-13B NeuPIMs device, samples a warmed ShareGPT batch, runs a
generation iteration, and compares throughput and utilization against the
naive NPU+PIM baseline — the paper's headline experiment in miniature.

Run:  python examples/quickstart.py
"""

from repro.analysis.metrics import iteration_throughput
from repro.analysis.report import format_table
from repro.baselines.npu_pim import naive_npu_pim_device
from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_13B
from repro.serving.trace import SHAREGPT, warmed_batch


def main() -> None:
    spec = GPT3_13B
    batch_size = 256
    batch = warmed_batch(SHAREGPT, batch_size, seed=42)

    neupims = NeuPimsDevice(spec, NeuPimsConfig.neupims(),
                            tp=spec.tensor_parallel)
    naive = naive_npu_pim_device(spec, tp=spec.tensor_parallel)

    rows = []
    for name, device in (("NPU+PIM (naive)", naive), ("NeuPIMs", neupims)):
        result = device.iteration(list(batch))
        rows.append((
            name,
            round(result.latency / 1e3, 1),
            round(iteration_throughput(result, batch_size)),
            f"{result.utilization('npu'):.1%}",
            f"{result.utilization('pim'):.1%}",
        ))

    print(format_table(
        ["system", "iteration (us)", "tokens/s", "NPU util", "PIM util"],
        rows,
        title=f"{spec.name}, batch {batch_size}, ShareGPT lengths"))

    speedup = rows[0][1] / rows[1][1]
    print(f"\nNeuPIMs speedup over naive NPU+PIM: {speedup:.2f}x")
    print("(paper reports 1.6x on average, up to 3x at large batch)")


if __name__ == "__main__":
    main()
