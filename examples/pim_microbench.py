#!/usr/bin/env python3
"""PIM microbenchmark: command-level view of the dual-row-buffer bank.

Lowers one MHA logit GEMV to both PIM command encodings (fine-grained
Newton vs NeuPIMs composite), replays them through the cycle-level memory
controller, and reports command counts, C/A-bus occupancy, concurrency
with regular memory reads, and channel power — the microarchitecture
story of paper §5 in one script.

The two hardware configurations under test are declared as
``ScenarioSpec``s (the naive NPU+PIM system vs full NeuPIMs, both at
``fidelity="cycle"``); each ``Session`` resolves the feature flags and
HBM organization that drive the command streams, and its
``calibrated_estimator()`` exposes the cycle-calibrated Algorithm-1
constants the analytic fast path would use for the same hardware.

Run:  python examples/pim_microbench.py
"""

from repro.analysis.report import format_table
from repro.api import ScenarioSpec, Session, TrafficSpec
from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.power import PowerModel
from repro.pim.gemv import GemvOp, composite_stream, fine_grained_stream


def build_session(system: str) -> Session:
    """Declare one hardware configuration through the scenario API."""
    return Session(ScenarioSpec(
        model="gpt3-7b", system=system, fidelity="cycle",
        traffic=TrafficSpec.warmed(batch_size=1)))


def run_one(session: Session):
    """Replay a GEMV plus concurrent memory reads; return statistics."""
    config = session.config
    dual = config.dual_row_buffer
    composite = config.composite_isa
    channel = Channel(0, timing=config.timing, org=config.org,
                      pim_timing=config.pim_timing, dual_row_buffer=dual)
    controller = MemoryController(
        channel, ControllerConfig(header_aware_refresh=composite))

    op = GemvOp(rows=384 * 40, cols=128, tag="logit")
    builder = composite_stream if composite else fine_grained_stream
    controller.enqueue_pim(builder(op, channel.org))

    # Concurrent regular memory traffic (NPU streaming weights).
    for i in range(64):
        bank = 16 + (i % 8)
        controller.enqueue_mem([
            Command(CommandType.ACT, bank=bank, row=i),
            Command(CommandType.RD, bank=bank),
            Command(CommandType.PRE, bank=bank),
        ])
    records = controller.drain()

    reads = [r for r in records if r.command.ctype is CommandType.RD]
    power = PowerModel(dual_row_buffer=dual,
                       banks_per_channel=channel.org.banks_per_channel)
    return {
        "commands": len(records),
        "finish": controller.finish_time,
        "ca_busy": channel.ca_busy_cycles,
        "last_read_done": max(r.complete_time for r in reads),
        "power_mw": power.report(records).average_power_mw,
    }


def main() -> None:
    naive_session = build_session("npu-pim")
    neupims_session = build_session("neupims")
    naive = run_one(naive_session)
    neupims = run_one(neupims_session)

    rows = [
        ("total commands", naive["commands"], neupims["commands"]),
        ("C/A bus busy (cycles)", round(naive["ca_busy"]),
         round(neupims["ca_busy"])),
        ("GEMV + reads finish (cycles)", round(naive["finish"]),
         round(neupims["finish"])),
        ("last memory read done (cycles)", round(naive["last_read_done"]),
         round(neupims["last_read_done"])),
        ("channel power (mW)", round(naive["power_mw"], 1),
         round(neupims["power_mw"], 1)),
    ]
    print(format_table(
        ["metric", "blocked + fine-grained", "NeuPIMs (DRB + composite)"],
        rows, title="PIM channel microbenchmark (one MHA logit GEMV "
                    "+ concurrent weight reads)"))

    latencies = neupims_session.calibrated_estimator().latencies
    print(f"\ncycle-calibrated Algorithm-1 constants: "
          f"L_tile={latencies.l_tile:.0f}, "
          f"L_GWRITE={latencies.l_gwrite:.0f} cycles")
    print("With dual row buffers the memory reads finish *inside* the")
    print("GEMV window instead of queueing behind it, and the composite")
    print("PIM_GEMV command keeps the C/A bus nearly idle (Figure 9).")


if __name__ == "__main__":
    main()
