#!/usr/bin/env python3
"""Fleet failover: a heterogeneous 4-node fleet surviving a node kill.

Demonstrates the cluster tier (:mod:`repro.cluster`) end to end:

* a **heterogeneous fleet** — four nodes with different batch caps and
  KV budgets behind one least-loaded router, described by a single
  frozen :class:`~repro.cluster.spec.FleetSpec`;
* a **seeded node kill** — ``fault_seed`` arms a pure-seeded
  :class:`~repro.faults.plan.NodeDown` window; the router's health
  probes mark the node down, fail its in-flight requests over to the
  survivors (restore costs charged through the preemption model) and
  re-admit it after the cooldown;
* **fleet observability** — the router publishes typed events
  (``NodeMarkedDown`` / ``RequestFailedOver`` / ``NodeRecovered``),
  and per-node latency trackers let us split p99 TPOT into
  before / during / after the outage.

Run:  python examples/fleet_failover.py
"""

from repro.analysis.report import format_table
from repro.api import ScenarioSpec, ServingSpec, TrafficSpec
from repro.cluster import FleetSpec, Router
from repro.serving.events import (NodeMarkedDown, NodeRecovered,
                                  RequestFailedOver)
from repro.serving.latency import percentile

FAULT_SEED = 5  # seeds the NodeDown window (pure function of the seed)


def build_fleet() -> FleetSpec:
    """Four heterogeneous nodes behind a least-loaded router."""
    def node(max_batch: int, kv_bits: int) -> ScenarioSpec:
        return ScenarioSpec(
            model="gpt3-7b", system="neupims", layers_resident=2,
            fidelity="analytic",
            serving=ServingSpec(max_batch_size=max_batch,
                                kv_capacity_bytes=1 << kv_bits,
                                deadline_cycles=6e7, max_retries=1,
                                retry_backoff_cycles=2e5),
            label=f"node-b{max_batch}")
    return FleetSpec(
        nodes=(node(8, 28), node(8, 27), node(6, 28), node(4, 27)),
        traffic=TrafficSpec.poisson(rate_per_kcycle=0.03,
                                    horizon_cycles=3e6, seed=11,
                                    max_requests=32),
        policy="least-loaded",
        fault_seed=FAULT_SEED,
        fault_options={"horizon": 8e7, "downs": 1},
        label="fleet-failover-demo")


def phase_of(completion: float, down: float, up: float) -> str:
    """Classify a completion time against the outage window."""
    if completion < down:
        return "before"
    if completion < up:
        return "during"
    return "after"


def main() -> None:
    fleet = build_fleet()
    router = Router(fleet)
    router.materialize()

    outages = []
    router.events.subscribe(NodeMarkedDown, outages.append)
    router.events.subscribe(NodeRecovered, outages.append)
    failovers = []
    router.events.subscribe(RequestFailedOver, failovers.append)

    result = router.run()

    downs = [e for e in outages if isinstance(e, NodeMarkedDown)]
    ups = [e for e in outages if isinstance(e, NodeRecovered)]
    down_at = downs[0].time if downs else float("inf")
    up_at = ups[0].time if ups else float("inf")

    # Per-request TPOT from the final node that ran each completed
    # request (failed-over requests measure from their re-dispatch).
    completed = {s["request_id"] for s in result.statuses
                 if s["status"] == "completed"}
    final = {}
    for handle in router.handles:
        for entry in handle.session.latency_tracker.report().requests:
            prior = final.get(entry.request_id)
            if prior is None or entry.completion_time > prior[0]:
                final[entry.request_id] = (entry.completion_time,
                                           entry.tpot, handle.index)

    node_rows = []
    for handle, node_result in zip(router.handles, result.nodes):
        tpots = [tpot for rid, (_, tpot, node) in final.items()
                 if node == handle.index and rid in completed]
        node_rows.append((
            f"node {handle.index} ({fleet.nodes[handle.index].label})",
            node_result.iterations,
            sum(1 for s in result.statuses
                if s["node"] == handle.index and s["status"] == "completed"),
            round(percentile(tpots, 99) / 1e6, 3) if tpots else "-",
            "yes" if downs and downs[0].node == handle.index else "no",
        ))
    print(format_table(
        ["node", "iterations", "completed", "p99 TPOT (ms)", "killed"],
        node_rows, title="Per-node view (least-loaded routing, 1 kill)"))

    phase_rows = []
    for phase in ("before", "during", "after"):
        tpots = [tpot for rid, (done, tpot, _) in final.items()
                 if rid in completed and phase_of(done, down_at,
                                                  up_at) == phase]
        phase_rows.append((
            phase, len(tpots),
            round(percentile(tpots, 99) / 1e6, 3) if tpots else "-",
        ))
    print()
    print(format_table(
        ["phase", "completions", "fleet p99 TPOT (ms)"],
        phase_rows,
        title=f"Fleet TPOT around the outage "
              f"(down at {down_at / 1e6:.1f} ms, "
              f"back at {up_at / 1e6:.1f} ms)"))

    print()
    print(format_table(["metric", "value"], result.summary_rows(),
                       title="FleetResult summary"))

    print(f"\n{len(failovers)} request(s) failed over when node "
          f"{downs[0].node if downs else '?'} went down; the conservation "
          f"ledger still balances: {result.conserved()} — every admitted")
    print("request reached exactly one terminal status across the outage,")
    print("which is the invariant `python -m repro chaos --fleet` sweeps.")


if __name__ == "__main__":
    main()
