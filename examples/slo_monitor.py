#!/usr/bin/env python3
"""Live SLO control: a streaming session driving an admission throttle.

Demonstrates the two pillars of the pluggable API on one serving
scenario:

* a **registered component** — ``SloThrottleScheduler`` is a custom
  iteration-scheduler policy registered as ``"slo-throttle"``; the spec
  selects it by name (``scheduler="slo-throttle"``) and passes its knob
  through ``scheduler_options``, exactly like a built-in;
* the **streaming Session API** — ``Session.stream()`` yields typed
  events (``IterationCompleted``, ``RequestAdmitted``/``Retired``,
  ``KvPressure``) that a monitor folds into a live TPOT estimate, and
  ``Session.run_until()`` early-stops a run from a predicate.

The throttle holds admissions whenever the recent per-token pacing
(iteration latency — every running request gains one token per
iteration) exceeds the SLO, trading throughput for tail latency.

Run:  python examples/slo_monitor.py
"""

from collections import Counter

from repro.analysis.report import format_table
from repro.api import ScenarioSpec, ServingSpec, Session, TrafficSpec
from repro.registry import REGISTRY
from repro.serving.events import (IterationCompleted, KvPressure,
                                  RequestAdmitted, RequestRetired)
from repro.serving.scheduler import IterationScheduler

TPOT_SLO_MS = 1.0  # per-token pacing target at the 1 GHz model clock


class SloThrottleScheduler(IterationScheduler):
    """Iteration-level scheduling with an SLO-aware admission gate.

    Standard Orca-style scheduling, except that waiting requests are
    only admitted while the mean iteration latency over the last
    ``window`` iterations is within ``tpot_slo_ms`` — under pressure
    the batch is left to drain instead of growing, which shortens
    iterations and pulls the pacing back under the target.
    """

    def __init__(self, *, tpot_slo_ms: float = TPOT_SLO_MS,
                 window: int = 8, **wiring) -> None:
        super().__init__(**wiring)
        self.tpot_slo_ms = tpot_slo_ms
        self.window = window
        self.throttled_boundaries = 0

    def _over_slo(self) -> bool:
        recent = self.stats.iterations[-self.window:]
        if not recent:
            return False
        mean_cycles = sum(r.latency for r in recent) / len(recent)
        return mean_cycles > self.tpot_slo_ms * 1e6

    def _admit(self) -> int:
        if self._over_slo():
            self.throttled_boundaries += 1
            return 0
        return super()._admit()


REGISTRY.register(
    "scheduler", "slo-throttle", SloThrottleScheduler,
    description="admission throttle driven by the live TPOT estimate",
    option_names=("tpot_slo_ms", "window"))


def build_spec(scheduler: str, **scheduler_options) -> ScenarioSpec:
    """Streaming ShareGPT traffic hot enough to violate the SLO."""
    return ScenarioSpec(
        model="gpt3-7b",
        tp=4,
        layers_resident=8,
        fidelity="analytic",
        traffic=TrafficSpec.poisson(dataset="sharegpt",
                                    rate_per_kcycle=0.08,
                                    horizon_cycles=4e6, seed=11,
                                    max_requests=96),
        serving=ServingSpec(max_batch_size=64, paged_kv=False,
                            load_tracker=False),
        scheduler=scheduler,
        scheduler_options=scheduler_options,
        label=scheduler,
    )


def monitored_run(spec: ScenarioSpec):
    """Drive one session through the event stream, folding live stats."""
    session = Session(spec)
    counts = Counter()
    worst_pacing_ms = 0.0
    for event in session.stream():
        counts[type(event).__name__] += 1
        if isinstance(event, IterationCompleted):
            pacing_ms = event.record.latency / 1e6
            worst_pacing_ms = max(worst_pacing_ms, pacing_ms)
        elif isinstance(event, (RequestAdmitted, RequestRetired,
                                KvPressure)):
            pass  # counted above; a live dashboard would render these
    result = session.result()
    report = session.latency_tracker.report()
    return session, result, report, counts, worst_pacing_ms


def main() -> None:
    rows = []
    for name, options in (("iteration", {}),
                          ("slo-throttle", {"tpot_slo_ms": TPOT_SLO_MS,
                                            "window": 8})):
        session, result, report, counts, worst = monitored_run(
            build_spec(name, **options))
        attainment = report.slo_attainment(tpot_cycles=TPOT_SLO_MS * 1e6)
        throttled = getattr(session.scheduler, "throttled_boundaries", 0)
        rows.append((
            name,
            counts["IterationCompleted"],
            counts["RequestAdmitted"],
            round(result.latency_ms["tpot_p99_ms"], 3),
            round(worst, 3),
            f"{attainment:.0%}",
            throttled,
            round(result.tokens_per_second / 1e3, 1),
        ))

    print(format_table(
        ["scheduler", "iterations", "admitted", "TPOT p99 (ms)",
         "worst pacing (ms)", f"TPOT<{TPOT_SLO_MS}ms", "throttled",
         "k tokens/s"],
        rows, title="Streaming SLO monitor: plain vs throttled admission"))

    # Early stop from a predicate: cut the throttled run after its first
    # 200 iterations and read the partial result — run_until leaves the
    # stack synchronized and resumable.
    session = Session(build_spec("slo-throttle",
                                 tpot_slo_ms=TPOT_SLO_MS))
    partial = session.run_until(
        lambda s: len(s.scheduler.stats.iterations) >= 200)
    full = session.run()
    print(f"\nEarly stop at {partial.iterations} iterations "
          f"({partial.total_tokens} tokens); resumed run finished at "
          f"{full.iterations} iterations ({full.total_tokens} tokens).")

    print("\nThe throttle admits nothing while the recent pacing is over")
    print("the SLO, so p99 TPOT drops at some throughput cost — a live")
    print("policy built entirely on registered components and the event")
    print("stream, with zero overhead when nobody subscribes.")


if __name__ == "__main__":
    main()
