#!/usr/bin/env python3
"""Reproduce every headline claim of the paper in one run.

Runs the fast validation suite over all reproduced artifacts — the
roofline (Fig. 4), the composite ISA (Fig. 9), MHA overlap (Fig. 10), the
throughput ordering (Fig. 12), utilization (Table 4), the ablation
(Fig. 13), parallelism preference (Fig. 14), the TransPIM gap (Fig. 15)
and the area overhead — and prints a pass/fail table.  Every simulation
check is declared as a ``repro.api.ScenarioSpec`` and executed through a
``Session`` (see ``repro.analysis.validate``).  For the full tables and
figures run ``pytest benchmarks/ --benchmark-only -s``.

Run:  python examples/reproduce_paper.py
"""

import sys

from repro.analysis.report import format_table
from repro.analysis.validate import validate_all


def main() -> int:
    results = validate_all()
    rows = [
        (r.name, r.claim, r.measured, "PASS" if r.passed else "FAIL")
        for r in results
    ]
    print(format_table(["artifact", "claim", "measured", "status"], rows,
                       title="NeuPIMs reproduction — claim validation"))
    failed = [r for r in results if not r.passed]
    print(f"\n{len(results) - len(failed)}/{len(results)} claims validated")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
