#!/usr/bin/env python3
"""Deployment planning: pick (TP, PP, batch) for a model and device budget.

Uses the planner to enumerate feasible configurations of a NeuPIMs
cluster for GPT3-13B on ShareGPT traffic, under an optional per-token
latency SLO, and prints the decision table.  Each grid point is one
declarative ``ScenarioSpec`` (built by ``repro.core.planner
.plan_scenario``) run by a ``Session`` over the multi-device system
engine; the specs fan across a process pool (``--workers N``) through
``repro.api.run_scenarios``, and the chosen plan is identical to a
serial run.

Run:  python examples/capacity_planner.py [--workers N]
"""

import argparse

from repro.analysis.report import format_table
from repro.core.planner import plan_deployment
from repro.model.spec import GPT3_13B, GPT3_175B
from repro.serving.trace import SHAREGPT


def plan_and_print(spec, max_devices, slo_ms=None, workers=1):
    label = f"{spec.name}, up to {max_devices} devices"
    if slo_ms is not None:
        label += f", iteration SLO {slo_ms} ms"
    plan = plan_deployment(spec, SHAREGPT, max_devices=max_devices,
                           batch_sizes=[64, 128, 256, 512],
                           max_iteration_latency_ms=slo_ms,
                           parallel=workers if workers > 1 else None)

    rows = []
    for point in sorted(plan.points,
                        key=lambda p: -p.throughput_tokens_per_second)[:10]:
        rows.append((
            f"(TP={point.tp}, PP={point.pp})", point.batch_size,
            point.devices,
            round(point.throughput_tokens_per_second / 1e3, 1),
            round(point.iteration_latency_ms, 2),
            "yes" if point.feasible else "no",
        ))
    print(format_table(
        ["scheme", "batch", "devices", "k tokens/s", "iter ms", "feasible"],
        rows, title=label))
    if plan.best is None:
        print("-> no feasible configuration\n")
    else:
        best = plan.best
        print(f"-> chosen: (TP={best.tp}, PP={best.pp}) batch "
              f"{best.batch_size}: "
              f"{best.throughput_tokens_per_second / 1e3:.1f}k tokens/s\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool workers for the planner grid "
                             "(1 = serial; identical plan either way)")
    args = parser.parse_args()
    plan_and_print(GPT3_13B, max_devices=4, workers=args.workers)
    plan_and_print(GPT3_13B, max_devices=4, slo_ms=10.0, workers=args.workers)
    # 175B needs many devices before anything is feasible.
    plan_and_print(GPT3_175B, max_devices=32, workers=args.workers)


if __name__ == "__main__":
    main()
