#!/usr/bin/env python3
"""Compiler pipeline: scenario specification -> IR -> device binary.

Walks the NeuPIMs compiler framework end to end (paper Figure 7,
component 4): declare the LLM + system through the ``repro.api`` front
door (a ``ScenarioSpec`` built from a plain JSON dict, the same
declarative document the CLI consumes), lower the model into the
operator IR, emit NPU tile instructions and PIM command streams,
schedule them onto engines, and serialize the binary.

Run:  python examples/compile_model.py
"""

from repro.analysis.report import format_table
from repro.api import ScenarioSpec, Session
from repro.compiler.lower import emit_binary, lower_model
from repro.compiler.schedule import balance_report, schedule_binary, serialize
from repro.dram.commands import CommandType

#: The admin-provided declarative document (JSON-shaped plain dict).
SPECIFICATION = {
    "model": "gpt3-7b",
    "system": "neupims",
    "tp": 4,
    "fidelity": "analytic",
}


def main() -> None:
    session = Session(ScenarioSpec.from_dict(SPECIFICATION))
    spec = session.model_spec
    print(f"compiling {spec.name}: {spec.num_layers} layers, "
          f"{spec.num_heads} heads, d_model {spec.d_model}, "
          f"TP={session.tp}\n")

    # A one-layer batch (the per-layer program repeats across the stack).
    seq_lens = [128, 256, 384, 512]
    module = lower_model(spec, seq_lens, tp=session.tp, num_layers=1)
    binary = emit_binary(module, session.config)
    queues = schedule_binary(binary)

    pim_kinds = {}
    for cmd in binary.pim_commands:
        pim_kinds[cmd.ctype.value] = pim_kinds.get(cmd.ctype.value, 0) + 1

    rows = [
        ("IR operators", len(module)),
        ("NPU tile instructions", len(binary.npu_instructions)),
        ("NPU makespan (cycles/array)", round(queues.npu_makespan_cycles())),
        ("array load imbalance", round(balance_report(queues)["imbalance"], 3)),
        ("PIM commands", len(binary.pim_commands)),
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"one-layer binary, batch {len(seq_lens)}"))
    print()
    print(format_table(["PIM opcode", "count"],
                       sorted(pim_kinds.items()),
                       title="PIM command mix (composite ISA)"))

    text = serialize(binary)
    print(f"\nserialized binary: {len(text.splitlines())} lines, "
          f"{len(text)} bytes")
    print("first lines:")
    for line in text.splitlines()[:6]:
        print(f"  {line}")

    assert CommandType.PIM_GEMV.value in pim_kinds
    print("\n(the same scenario with system='npu-pim' lowers the GEMVs to "
          "fine-grained PIM_ACTIVATION/PIM_DOTPRODUCT streams — see "
          "examples/pim_microbench.py)")


if __name__ == "__main__":
    main()
