#!/usr/bin/env python3
"""Compiler pipeline: JSON specification -> IR -> device binary.

Walks the NeuPIMs compiler framework end to end (paper Figure 7,
component 4): parse the admin-provided LLM + system specifications,
lower the model into the operator IR, emit NPU tile instructions and PIM
command streams, schedule them onto engines, and serialize the binary.

Run:  python examples/compile_model.py
"""

import json

from repro.analysis.report import format_table
from repro.compiler.frontend import load_specification
from repro.compiler.lower import emit_binary, lower_model
from repro.compiler.schedule import balance_report, schedule_binary, serialize
from repro.dram.commands import CommandType

SPECIFICATION = json.dumps({
    "model": {"preset": "gpt3-7b"},
    "system": {
        "features": {"composite_isa": True, "sub_batch_interleaving": True},
        "parallelism": {"tp": 4, "pp": 1},
    },
})


def main() -> None:
    compilation = load_specification(SPECIFICATION)
    spec = compilation.model
    print(f"compiling {spec.name}: {spec.num_layers} layers, "
          f"{spec.num_heads} heads, d_model {spec.d_model}, "
          f"TP={compilation.scheme.tp}\n")

    # A one-layer batch (the per-layer program repeats across the stack).
    seq_lens = [128, 256, 384, 512]
    module = lower_model(spec, seq_lens, tp=compilation.scheme.tp,
                         num_layers=1)
    binary = emit_binary(module, compilation.config)
    queues = schedule_binary(binary)

    pim_kinds = {}
    for cmd in binary.pim_commands:
        pim_kinds[cmd.ctype.value] = pim_kinds.get(cmd.ctype.value, 0) + 1

    rows = [
        ("IR operators", len(module)),
        ("NPU tile instructions", len(binary.npu_instructions)),
        ("NPU makespan (cycles/array)", round(queues.npu_makespan_cycles())),
        ("array load imbalance", round(balance_report(queues)["imbalance"], 3)),
        ("PIM commands", len(binary.pim_commands)),
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"one-layer binary, batch {len(seq_lens)}"))
    print()
    print(format_table(["PIM opcode", "count"],
                       sorted(pim_kinds.items()),
                       title="PIM command mix (composite ISA)"))

    text = serialize(binary)
    print(f"\nserialized binary: {len(text.splitlines())} lines, "
          f"{len(text)} bytes")
    print("first lines:")
    for line in text.splitlines()[:6]:
        print(f"  {line}")

    assert CommandType.PIM_GEMV.value in pim_kinds
    print("\n(with composite_isa=False the same GEMVs lower to "
          "PIM_ACTIVATION/PIM_DOTPRODUCT streams — see "
          "examples/pim_microbench.py)")


if __name__ == "__main__":
    main()
